//! The boundary integral solver of §3: Nyström discretization of
//! `(1/2 I + D + N) φ = g` with singular/near-singular quadrature by
//! check-point extrapolation, solved matrix-free with GMRES.
//!
//! The dense operator is never assembled (§3): each GMRES iteration
//! upsamples the density to the fine discretization, evaluates the layer
//! potential at all check points (FMM or direct summation), and
//! extrapolates back to the on-surface targets. Because the check points
//! lie on the *fluid* side of Γ, the extrapolated value is the interior
//! limit, which already contains the `+φ/2` jump — so the discrete operator
//! is exactly the left-hand side of Eq. (2.5)/(3.5).

use crate::closest::{closest_points, ClosestHit};
use crate::fine::FineDiscretization;
use crate::precond::CoarseGridPrecond;
use fmm::{Fmm, FmmOptions};
use kernels::{direct_eval, Kernel, LaplaceDL, StokesDL};
use linalg::{gmres, gmres_right, GmresOptions, GmresResult, Interp1d, LinearOperator, Vec3};
use parking_lot::Mutex;
use patch::{BoundarySurface, SurfaceQuad};
use std::sync::atomic::{AtomicU64, Ordering};

/// A double-layer kernel usable by the Nyström solver: packs a density
/// value, surface normal and quadrature weight into FMM source data.
pub trait LayerKernel: Kernel + Clone + Sync + Send {
    /// Components of the layer density (3 for Stokes, 1 for Laplace).
    fn value_dim(&self) -> usize;
    /// Packs `weight · density` and the normal into the kernel's source
    /// data layout (`src_dim` entries).
    fn pack(&self, density: &[f64], normal: Vec3, weight: f64, out: &mut [f64]);
}

impl LayerKernel for StokesDL {
    fn value_dim(&self) -> usize {
        3
    }
    fn pack(&self, density: &[f64], normal: Vec3, weight: f64, out: &mut [f64]) {
        out[0] = density[0] * weight;
        out[1] = density[1] * weight;
        out[2] = density[2] * weight;
        out[3] = normal.x;
        out[4] = normal.y;
        out[5] = normal.z;
    }
}

impl LayerKernel for LaplaceDL {
    fn value_dim(&self) -> usize {
        1
    }
    fn pack(&self, density: &[f64], normal: Vec3, weight: f64, out: &mut [f64]) {
        out[0] = density[0] * weight;
        out[1] = normal.x;
        out[2] = normal.y;
        out[3] = normal.z;
    }
}

/// How the check-point distances `(R, r)` derive from the patch size `L̂`
/// (§5.1: `R = r = 0.15 L̂` for strong scaling, `0.1 L̂` weak; §5.3 uses
/// `R = 0.04 √L̂`, `r = R/8` for the convergence study).
#[derive(Clone, Copy, Debug)]
pub enum CheckSpec {
    /// `R = big_r · L̂`, `r = small_r · L̂`.
    Linear {
        /// First check-point distance as a multiple of `L̂`.
        big_r: f64,
        /// Check-point spacing as a multiple of `L̂`.
        small_r: f64,
    },
    /// `R = big_r · √L̂`, `r = ratio · R`.
    Sqrt {
        /// First check-point distance as a multiple of `√L̂`.
        big_r: f64,
        /// Check-point spacing relative to `R`.
        ratio: f64,
    },
}

impl CheckSpec {
    /// Computes `(R, r)` for a given patch size.
    pub fn distances(&self, l_hat: f64) -> (f64, f64) {
        match *self {
            CheckSpec::Linear { big_r, small_r } => (big_r * l_hat, small_r * l_hat),
            CheckSpec::Sqrt { big_r, ratio } => {
                let r = big_r * l_hat.sqrt();
                (r, ratio * r)
            }
        }
    }
}

/// Which engine evaluates the fine-source → check-point layer potential —
/// the matvec inside every GMRES iteration, and the far-field part of
/// [`DoubleLayerSolver::eval_at`].
///
/// The dense path is O(N_fine · N_check); both factors grow linearly with
/// the patch count `P`, so its cost is O(P²) and wall refinement
/// (4× patches per level) multiplies it 16× per level. The FMM path is
/// O(P) with a larger constant (tree + translation setup is amortized:
/// the solve-time [`fmm::Fmm`] is built once per solver and its arenas are
/// reused across all GMRES iterations and time steps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatvecBackend {
    /// Choose by patch count: FMM from
    /// [`MatvecBackend::FMM_CROSSOVER_PATCHES`] patches up, dense below.
    Auto,
    /// Direct summation through the vectorized [`kernels::direct_eval`].
    Dense,
    /// The kernel-independent [`fmm::Fmm`].
    Fmm,
}

impl MatvecBackend {
    /// Patch count from which `Auto` routes the GMRES matvec through the
    /// FMM. Measured on the registry-scale capsule tube (q = qf = 8,
    /// η = 1, p = 5; full table in `crates/bie/README.md`): per-matvec
    /// dense vs FMM is 0.20 s vs 2.5 s at 22 patches, 3.1 s vs 5.4 s at
    /// 88, 24.4 s vs 11.6 s at 352 — the dense O(P²) curve crosses the
    /// FMM's O(P) near ~150 patches. 128 sits just under that: the
    /// unrefined registry vessels (14–96 patches) stay dense (and
    /// bit-identical to the pre-backend code), while every refined vessel
    /// (≥ 4× the patches per level) goes FMM.
    pub const FMM_CROSSOVER_PATCHES: usize = 128;

    /// Resolves the backend choice for a surface with `num_patches`
    /// patches: `true` ⇒ FMM, `false` ⇒ dense summation.
    pub fn use_fmm(self, num_patches: usize) -> bool {
        match self {
            MatvecBackend::Dense => false,
            MatvecBackend::Fmm => true,
            MatvecBackend::Auto => num_patches >= Self::FMM_CROSSOVER_PATCHES,
        }
    }
}

/// Solver options; defaults follow the paper's production configuration.
#[derive(Clone, Copy, Debug)]
pub struct BieOptions {
    /// Patch-subdivision depth of the fine discretization (η).
    pub eta: u32,
    /// Clenshaw–Curtis order on fine subpatches (0 ⇒ same as coarse `q`).
    pub qf: usize,
    /// Extrapolation order `p` (p+1 check points).
    pub p_extrap: usize,
    /// Check-point distance rule.
    pub check: CheckSpec,
    /// Near-zone radius for off-surface evaluation, in units of `L̂`.
    pub near_factor: f64,
    /// Far-field summation engine for the GMRES matvec and `eval_at`.
    pub backend: MatvecBackend,
    /// FMM tuning.
    pub fmm: FmmOptions,
    /// GMRES controls (the paper caps iterations at 30 in scaling runs).
    pub gmres: GmresOptions,
    /// Include the rank-completing operator `N` (required for the interior
    /// Stokes problem; not needed for Laplace).
    pub null_space: bool,
    /// Build the coarse-grid correction preconditioner at setup and run
    /// GMRES right-preconditioned with it. Off by default: on the
    /// production discretization it does not beat plain GMRES (see the
    /// measurements in [`crate::precond`]); the warm start carried by the
    /// time stepper is what cuts per-step iterations.
    pub precond: bool,
}

impl Default for BieOptions {
    fn default() -> Self {
        BieOptions {
            eta: 1,
            qf: 0,
            p_extrap: 8,
            check: CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            near_factor: 1.0,
            backend: MatvecBackend::Auto,
            fmm: FmmOptions::default(),
            gmres: GmresOptions {
                tol: 1e-8,
                atol: 1e-12,
                max_iters: 100,
                restart: 60,
                stall_ratio: 0.0,
            },
            null_space: true,
            precond: false,
        }
    }
}

/// Scratch buffers recycled across GMRES matvecs ([`DoubleLayerSolver::apply`]
/// is called dozens of times per solve; reallocating the fine density, the
/// packed source data, and the check-point values every application showed
/// up in the BIE-solve timer).
#[derive(Default)]
struct ApplyScratch {
    fine: Vec<f64>,
    src: Vec<f64>,
    vals: Vec<f64>,
}

/// The Nyström double-layer solver on a fixed boundary surface.
pub struct DoubleLayerSolver<K: LayerKernel, KE: Kernel + Clone + Sync + Send> {
    /// The boundary.
    pub surface: BoundarySurface,
    /// Coarse discretization (the Nyström nodes `y_ℓ`).
    pub quad: SurfaceQuad,
    /// Fine discretization for near-singular integration.
    pub fine: FineDiscretization,
    kernel: K,
    eq_kernel: KE,
    /// Options in effect.
    pub opts: BieOptions,
    vd: usize,
    /// Check points for the on-surface (singular) targets, `p+1` per node.
    check_pts: Vec<Vec3>,
    /// Extrapolation weights to `t = 0` (shared by all nodes: the check
    /// nodes are an affine family in `L̂`).
    extrap_w: Vec<f64>,
    /// FMM with fixed geometry (fine sources → check targets), reused every
    /// GMRES iteration; `None` when running direct summation.
    solve_fmm: Option<Fmm<K, KE>>,
    /// Coarse-grid correction preconditioner (assembled and LU-factored
    /// once at setup); `None` when `opts.precond` is off.
    precond: Option<CoarseGridPrecond>,
    /// Matvec scratch recycled across GMRES iterations.
    scratch: Mutex<ApplyScratch>,
    /// Nanoseconds spent in far-field summation (FMM or direct) — the
    /// paper's "BIE-FMM" timer category; reset with [`Self::take_fmm_nanos`].
    fmm_nanos: AtomicU64,
    /// Persistent FMM for [`Self::eval_at`]-style moving-target summation:
    /// frozen once over the (static) fine sources, then target-only
    /// replanned per call. Lazily built on the first FMM-routed
    /// `summation` call; dropped by [`Self::invalidate_eval_fmm`].
    eval_fmm: Mutex<Option<Fmm<K, KE>>>,
    /// Frozen-tree constructions of `eval_fmm` (plan-reuse telemetry: stays
    /// at 1 across a run unless the cache is invalidated).
    eval_fmm_builds: AtomicU64,
    /// Target-only replans on `eval_fmm` (one per FMM-routed `summation`).
    eval_fmm_replans: AtomicU64,
}

impl<K: LayerKernel, KE: Kernel + Clone + Sync + Send> DoubleLayerSolver<K, KE> {
    /// Builds the solver: coarse/fine discretizations, check points, and
    /// the (static-geometry) FMM for the GMRES matvec.
    pub fn new(surface: BoundarySurface, kernel: K, eq_kernel: KE, opts: BieOptions) -> Self {
        let quad = surface.quadrature();
        let qf = if opts.qf == 0 { surface.q } else { opts.qf };
        let fine = FineDiscretization::build(&surface, opts.eta, qf);
        let vd = kernel.value_dim();

        // check points: y − (R + i r) n, i = 0..=p (into the fluid)
        let p1 = opts.p_extrap + 1;
        let mut check_pts = Vec::with_capacity(quad.len() * p1);
        for l in 0..quad.len() {
            let l_hat = quad.patch_size(quad.patch_of[l] as usize);
            let (big_r, r) = opts.check.distances(l_hat);
            for i in 0..p1 {
                let t = big_r + i as f64 * r;
                check_pts.push(quad.points[l] - quad.normals[l] * t);
            }
        }
        // extrapolation weights to t = 0 on the canonical node family
        let (r0, rr) = opts.check.distances(1.0);
        let extrap_w = linalg::checkpoint_extrapolation_weights(r0, rr, opts.p_extrap, 0.0);

        let solve_fmm = if opts.backend.use_fmm(surface.num_patches()) {
            Some(Fmm::new(
                kernel.clone(),
                eq_kernel.clone(),
                &fine.points,
                &check_pts,
                opts.fmm,
            ))
        } else {
            None
        };
        let precond = if opts.precond {
            Some(CoarseGridPrecond::build(
                &kernel,
                &surface,
                opts.check,
                opts.p_extrap,
                opts.null_space && vd == 3,
            ))
        } else {
            None
        };

        DoubleLayerSolver {
            surface,
            quad,
            fine,
            kernel,
            eq_kernel,
            opts,
            vd,
            check_pts,
            extrap_w,
            solve_fmm,
            precond,
            scratch: Mutex::new(ApplyScratch::default()),
            fmm_nanos: AtomicU64::new(0),
            eval_fmm: Mutex::new(None),
            eval_fmm_builds: AtomicU64::new(0),
            eval_fmm_replans: AtomicU64::new(0),
        }
    }

    /// The coarse-grid preconditioner, when one was built.
    pub fn precond(&self) -> Option<&CoarseGridPrecond> {
        self.precond.as_ref()
    }

    /// The backend the GMRES matvec actually resolved to (`Auto` settled
    /// at construction by patch count): [`MatvecBackend::Fmm`] when the
    /// solve routes through the persistent FMM, [`MatvecBackend::Dense`]
    /// otherwise.
    pub fn solve_backend(&self) -> MatvecBackend {
        if self.solve_fmm.is_some() {
            MatvecBackend::Fmm
        } else {
            MatvecBackend::Dense
        }
    }

    /// Returns and resets the accumulated far-field summation time
    /// (seconds) — the BIE-FMM component of the paper's timing breakdown.
    pub fn take_fmm_nanos(&self) -> f64 {
        self.fmm_nanos.swap(0, Ordering::Relaxed) as f64 * 1e-9
    }

    /// Number of scalar unknowns (`N_coarse · value_dim`).
    pub fn dim(&self) -> usize {
        self.quad.len() * self.vd
    }

    /// Packs an upsampled density into kernel source data.
    fn pack_sources(&self, fine_density: &[f64]) -> Vec<f64> {
        let mut src = Vec::new();
        self.pack_sources_into(fine_density, &mut src);
        src
    }

    /// [`Self::pack_sources`] into a recycled caller buffer.
    fn pack_sources_into(&self, fine_density: &[f64], src: &mut Vec<f64>) {
        let sd = self.kernel.src_dim();
        let vd = self.vd;
        src.clear();
        src.resize(self.fine.len() * sd, 0.0);
        // batch work items: one dispatch per 256 nodes, not per node
        const BLK: usize = 256;
        rayon::par::chunks_mut(src, BLK * sd, |b, out| {
            for (r, o) in out.chunks_mut(sd).enumerate() {
                let j = b * BLK + r;
                self.kernel.pack(
                    &fine_density[j * vd..(j + 1) * vd],
                    self.fine.normals[j],
                    self.fine.weights[j],
                    o,
                );
            }
        });
    }

    /// Evaluates the layer potential of packed sources at arbitrary
    /// targets, choosing FMM or direct summation by problem size.
    ///
    /// The FMM path runs on a *persistent* [`Fmm::frozen`] plan: the tree,
    /// interaction lists, and operators are built once over the static
    /// fine sources (lazily, on the first FMM-routed call) and each call
    /// only replans the moving targets — the per-step throwaway build this
    /// replaced dominated the refined-vessel step time.
    fn summation(&self, src_data: &[f64], targets: &[Vec3]) -> Vec<f64> {
        let t0 = std::time::Instant::now();
        // `Auto` resolves by patch count like the solve matvec, but only
        // once the target set is big enough for the FMM to beat direct
        // summation (small unrefined problems stay dense — and
        // bit-identical to the pre-backend code)
        let use_fmm = match self.opts.backend {
            MatvecBackend::Dense => false,
            MatvecBackend::Fmm => true,
            MatvecBackend::Auto => {
                self.opts.backend.use_fmm(self.surface.num_patches())
                    && targets.len() * self.kernel.trg_dim() > 2000
            }
        };
        let out = if use_fmm {
            let mut guard = self.eval_fmm.lock();
            if guard.is_none() {
                *guard = Some(Fmm::frozen(
                    self.kernel.clone(),
                    self.eq_kernel.clone(),
                    &self.fine.points,
                    &[],
                    self.opts.fmm,
                ));
                self.eval_fmm_builds.fetch_add(1, Ordering::Relaxed);
            }
            self.eval_fmm_replans.fetch_add(1, Ordering::Relaxed);
            guard
                .as_mut()
                .expect("eval_fmm just built")
                .evaluate_at(src_data, targets)
        } else {
            let mut out = vec![0.0; targets.len() * self.kernel.trg_dim()];
            direct_eval(&self.kernel, &self.fine.points, src_data, targets, &mut out);
            out
        };
        self.fmm_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Returns and resets the persistent-eval-FMM activity counters
    /// `(frozen-tree builds, target replans)` — the plan-reuse telemetry
    /// behind `StepStats::{wall_fmm_builds, wall_fmm_replans}`. A healthy
    /// steady state is builds = 0 (the tree was built on an earlier step)
    /// and one replan per `eval_at`/`summation` call.
    pub fn take_eval_fmm_counters(&self) -> (u64, u64) {
        (
            self.eval_fmm_builds.swap(0, Ordering::Relaxed),
            self.eval_fmm_replans.swap(0, Ordering::Relaxed),
        )
    }

    /// Drops the persistent eval FMM; the next FMM-routed summation
    /// rebuilds it from the current fine sources. Callers invalidate when
    /// the surface the solver was built over changes identity (e.g. the
    /// vessel digest changes).
    pub fn invalidate_eval_fmm(&self) {
        *self.eval_fmm.lock() = None;
    }

    /// Applies the discrete boundary operator `A = (1/2 I + D)|_interior
    /// (+ N)` to a density (matrix-free GMRES matvec).
    pub fn apply(&self, phi: &[f64], out: &mut [f64]) {
        let vd = self.vd;
        let nq = self.quad.len();
        assert_eq!(phi.len(), nq * vd);
        // scratch recycled across GMRES iterations (apply is serial within
        // a solve; the lock is uncontended)
        let mut guard = self.scratch.lock();
        let scratch = &mut *guard;
        // 1. upsample to the fine grid
        self.fine.upsample_density_into(
            phi,
            vd,
            self.surface.num_patches(),
            self.surface.q,
            &mut scratch.fine,
        );
        // 2. pack and evaluate at all check points
        self.pack_sources_into(&scratch.fine, &mut scratch.src);
        let t0 = std::time::Instant::now();
        let fmm_vals;
        let vals: &[f64] = match &self.solve_fmm {
            Some(f) => {
                fmm_vals = f.evaluate(&scratch.src);
                &fmm_vals
            }
            None => {
                scratch.vals.clear();
                scratch.vals.resize(self.check_pts.len() * vd, 0.0);
                direct_eval(
                    &self.kernel,
                    &self.fine.points,
                    &scratch.src,
                    &self.check_pts,
                    &mut scratch.vals,
                );
                &scratch.vals
            }
        };
        self.fmm_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // 3. extrapolate to the surface (interior limit includes the jump)
        let p1 = self.opts.p_extrap + 1;
        // batch work items: one dispatch per 256 surface nodes
        const BLK: usize = 256;
        rayon::par::chunks_mut(out, BLK * vd, |b, chunk| {
            for (r, o) in chunk.chunks_mut(vd).enumerate() {
                let l = b * BLK + r;
                for c in 0..vd {
                    let mut acc = 0.0;
                    for i in 0..p1 {
                        acc += self.extrap_w[i] * vals[(l * p1 + i) * vd + c];
                    }
                    o[c] = acc;
                }
            }
        });
        // 4. null-space completion N φ = n(x) · (1/|Γ|) ∫ n·φ dS
        // (normalized by the surface area so its spectral weight matches
        // the O(1) eigenvalues of 1/2 I + D)
        if self.opts.null_space && vd == 3 {
            let mut flux = 0.0;
            for m in 0..nq {
                flux += self.quad.weights[m]
                    * (self.quad.normals[m].x * phi[m * 3]
                        + self.quad.normals[m].y * phi[m * 3 + 1]
                        + self.quad.normals[m].z * phi[m * 3 + 2]);
            }
            flux /= self.quad.total_area();
            for l in 0..nq {
                out[l * 3] += self.quad.normals[l].x * flux;
                out[l * 3 + 1] += self.quad.normals[l].y * flux;
                out[l * 3 + 2] += self.quad.normals[l].z * flux;
            }
        }
    }

    /// Removes the weighted-normal component `c·n`, `c = ∮ n·v dS / ∮ dS`,
    /// from a nodal vector field — the projection that keeps right-hand
    /// sides (and warm-start guesses) compatible with the null space of the
    /// interior Stokes double-layer operator.
    fn remove_normal_component(&self, v: &mut [f64]) {
        let nq = self.quad.len();
        let mut flux = 0.0;
        let mut nn = 0.0;
        for m in 0..nq {
            let n = self.quad.normals[m];
            let w = self.quad.weights[m];
            flux += w * (n.x * v[m * 3] + n.y * v[m * 3 + 1] + n.z * v[m * 3 + 2]);
            nn += w;
        }
        let c = flux / nn;
        for m in 0..nq {
            let n = self.quad.normals[m];
            v[m * 3] -= c * n.x;
            v[m * 3 + 1] -= c * n.y;
            v[m * 3 + 2] -= c * n.z;
        }
    }

    /// Solves `A φ = g` for the boundary condition `g` sampled at the
    /// coarse nodes. Returns the density and GMRES statistics.
    ///
    /// With the null-space completion active, the continuum compatibility
    /// condition `∫ g·n dS = 0` holds only to discretization accuracy; the
    /// incompatible component is removed from `g` first so GMRES does not
    /// stagnate at the quadrature-error floor.
    pub fn solve(&self, g: &[f64]) -> (Vec<f64>, GmresResult) {
        self.solve_warm(g, None)
    }

    /// Like [`Self::solve`], but starting GMRES from `warm` (typically the
    /// previous time step's density) instead of zero. The guess is
    /// projected back onto the null-space-compatible subspace first — the
    /// geometry carrying it forward has moved, so its normal component has
    /// drifted. A guess of the wrong length (e.g. after a re-discretization)
    /// is ignored.
    pub fn solve_warm(&self, g: &[f64], warm: Option<&[f64]>) -> (Vec<f64>, GmresResult) {
        let mut rhs = g.to_vec();
        if self.opts.null_space && self.vd == 3 {
            self.remove_normal_component(&mut rhs);
        }
        let mut phi = vec![0.0; self.dim()];
        if let Some(w) = warm {
            if w.len() == phi.len() {
                phi.copy_from_slice(w);
                if self.opts.null_space && self.vd == 3 {
                    self.remove_normal_component(&mut phi);
                }
            }
        }
        let op = SolverOperator { solver: self };
        let res = match &self.precond {
            Some(m) => gmres_right(&op, m, &rhs, &mut phi, &self.opts.gmres),
            None => gmres(&op, &rhs, &mut phi, &self.opts.gmres),
        };
        (phi, res)
    }

    /// Evaluates the solution field `u = D φ` at arbitrary points in the
    /// domain, using far (plain quadrature / FMM) or near-singular
    /// (check-point extrapolation, §3.1) evaluation per target based on the
    /// parallel closest-point search of §3.3.
    pub fn eval_at(&self, phi: &[f64], targets: &[Vec3]) -> Vec<f64> {
        let vd = self.vd;
        if targets.is_empty() {
            return Vec::new();
        }
        let fine_density =
            self.fine
                .upsample_density(phi, vd, self.surface.num_patches(), self.surface.q);
        let src = self.pack_sources(&fine_density);

        let hits = closest_points(&self.surface, &self.quad, targets, self.opts.near_factor);
        // assemble the combined target list: far targets first, then p+1
        // check points per near target
        let p1 = self.opts.p_extrap + 1;
        let mut far_idx = Vec::new();
        let mut near: Vec<(usize, ClosestHit)> = Vec::new();
        for (i, h) in hits.iter().enumerate() {
            match h {
                Some(hit) => near.push((i, *hit)),
                None => far_idx.push(i),
            }
        }
        let mut eval_pts: Vec<Vec3> = far_idx.iter().map(|&i| targets[i]).collect();
        let mut near_nodes: Vec<(f64, f64)> = Vec::with_capacity(near.len()); // (R, r)
        for &(i, hit) in &near {
            let l_hat = self.quad.patch_size(hit.patch as usize);
            let (big_r, r) = self.opts.check.distances(l_hat);
            near_nodes.push((big_r, r));
            for k in 0..p1 {
                let t = big_r + k as f64 * r;
                eval_pts.push(hit.point - hit.normal * t);
            }
            let _ = i;
        }
        let vals = self.summation(&src, &eval_pts);

        let mut out = vec![0.0; targets.len() * vd];
        for (slot, &i) in far_idx.iter().enumerate() {
            out[i * vd..(i + 1) * vd].copy_from_slice(&vals[slot * vd..(slot + 1) * vd]);
        }
        let base = far_idx.len();
        // one slot per near target, committed in index order; the serial
        // scatter below then runs in that fixed order
        let per_near: Vec<(usize, Vec<f64>)> = rayon::par::map_indexed(near.len(), |k| {
            let (i, hit) = near[k];
            let (big_r, r) = near_nodes[k];
            // signed distance along the inward line y − t n
            let t_x = (hit.point - targets[i]).dot(hit.normal);
            let nodes: Vec<f64> = (0..p1).map(|m| big_r + m as f64 * r).collect();
            let w = Interp1d::new(nodes).weights_at(t_x);
            let mut o = vec![0.0; vd];
            for m in 0..p1 {
                let v = &vals[(base + k * p1 + m) * vd..(base + k * p1 + m + 1) * vd];
                for c in 0..vd {
                    o[c] += w[m] * v[c];
                }
            }
            (i, o)
        });
        for (i, o) in per_near {
            out[i * vd..(i + 1) * vd].copy_from_slice(&o);
        }
        out
    }
}

struct SolverOperator<'a, K: LayerKernel, KE: Kernel + Clone + Sync + Send> {
    solver: &'a DoubleLayerSolver<K, KE>,
}

impl<K: LayerKernel, KE: Kernel + Clone + Sync + Send> LinearOperator
    for SolverOperator<'_, K, KE>
{
    fn dim(&self) -> usize {
        self.solver.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.solver.apply(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{laplace_sl, stokeslet, StokesEquiv};
    use patch::cube_sphere;

    fn laplace_solver(
        sub: u32,
        q: usize,
        opts: BieOptions,
    ) -> DoubleLayerSolver<LaplaceDL, kernels::LaplaceSL> {
        let s = cube_sphere(1.0, Vec3::ZERO, sub, q);
        DoubleLayerSolver::new(s, LaplaceDL, kernels::LaplaceSL, opts)
    }

    #[test]
    fn laplace_interior_dirichlet() {
        // harmonic field from an exterior charge; interior Dirichlet BIE
        let opts = BieOptions {
            eta: 2,
            p_extrap: 8,
            check: CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            backend: MatvecBackend::Dense,
            null_space: false,
            gmres: GmresOptions {
                tol: 1e-6,
                ..Default::default()
            },
            ..Default::default()
        };
        let solver = laplace_solver(1, 8, opts);
        let x0 = Vec3::new(2.5, 0.4, -0.3);
        let g: Vec<f64> = solver
            .quad
            .points
            .iter()
            .map(|&y| laplace_sl(y, x0, 1.0))
            .collect();
        let (phi, res) = solver.solve(&g);
        assert!(res.converged, "GMRES residual {}", res.rel_residual);
        assert!(res.iterations < 30, "iterations {}", res.iterations);
        // far interior points
        let targets = vec![
            Vec3::new(0.3, 0.0, 0.0),
            Vec3::new(-0.2, 0.4, 0.1),
            Vec3::ZERO,
        ];
        let u = solver.eval_at(&phi, &targets);
        for (i, &t) in targets.iter().enumerate() {
            let exact = laplace_sl(t, x0, 1.0);
            assert!(
                (u[i] - exact).abs() < 1e-3 * exact.abs(),
                "target {i}: {} vs {exact}",
                u[i]
            );
        }
    }

    #[test]
    fn laplace_near_surface_evaluation() {
        let opts = BieOptions {
            eta: 2,
            p_extrap: 8,
            check: CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            backend: MatvecBackend::Dense,
            null_space: false,
            gmres: GmresOptions {
                tol: 1e-6,
                ..Default::default()
            },
            ..Default::default()
        };
        let solver = laplace_solver(1, 8, opts);
        let x0 = Vec3::new(2.5, 0.4, -0.3);
        let g: Vec<f64> = solver
            .quad
            .points
            .iter()
            .map(|&y| laplace_sl(y, x0, 1.0))
            .collect();
        let (phi, _) = solver.solve(&g);
        // points very close to the surface (near-singular regime)
        let dirs = [
            Vec3::new(1.0, 0.2, 0.1).normalized(),
            Vec3::new(-0.3, 0.9, -0.3).normalized(),
        ];
        let targets: Vec<Vec3> = dirs.iter().map(|&d| d * 0.98).collect();
        let u = solver.eval_at(&phi, &targets);
        for (i, &t) in targets.iter().enumerate() {
            let exact = laplace_sl(t, x0, 1.0);
            assert!(
                (u[i] - exact).abs() < 5e-3 * exact.abs(),
                "near target {i}: {} vs {exact}",
                u[i]
            );
        }
    }

    #[test]
    fn stokes_interior_dirichlet() {
        // exact solution: Stokeslet at an exterior point (the Fig. 9 setup)
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 8);
        let opts = BieOptions {
            eta: 2,
            p_extrap: 8,
            check: CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            backend: MatvecBackend::Dense,
            null_space: true,
            // the residual floor of the completed Stokes system sits at the
            // discrete-compatibility level (~1e-5 at this resolution); the
            // paper likewise caps iterations rather than solving to zero
            gmres: GmresOptions {
                tol: 5e-5,
                ..Default::default()
            },
            ..Default::default()
        };
        let solver = DoubleLayerSolver::new(s, StokesDL, StokesEquiv { mu: 1.0 }, opts);
        let x0 = Vec3::new(0.0, 2.2, 1.1);
        let f0 = Vec3::new(1.0, -0.5, 2.0);
        let mut g = Vec::with_capacity(solver.dim());
        for &y in &solver.quad.points {
            let u = stokeslet(y, x0, f0, 1.0);
            g.extend_from_slice(&[u.x, u.y, u.z]);
        }
        let (phi, res) = solver.solve(&g);
        assert!(res.converged, "GMRES residual {}", res.rel_residual);
        assert!(res.iterations < 30, "iterations {}", res.iterations);
        let targets = vec![Vec3::new(0.25, 0.1, 0.0), Vec3::new(-0.3, -0.2, 0.35)];
        let u = solver.eval_at(&phi, &targets);
        for (i, &t) in targets.iter().enumerate() {
            let exact = stokeslet(t, x0, f0, 1.0);
            let got = Vec3::new(u[i * 3], u[i * 3 + 1], u[i * 3 + 2]);
            assert!(
                (got - exact).norm() < 2e-3 * exact.norm(),
                "target {i}: {got:?} vs {exact:?}"
            );
        }
    }

    #[test]
    fn operator_application_is_linear() {
        let opts = BieOptions {
            eta: 1,
            backend: MatvecBackend::Dense,
            null_space: false,
            ..Default::default()
        };
        let solver = laplace_solver(0, 6, opts);
        let n = solver.dim();
        let phi1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let phi2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut a1 = vec![0.0; n];
        let mut a2 = vec![0.0; n];
        let mut a12 = vec![0.0; n];
        solver.apply(&phi1, &mut a1);
        solver.apply(&phi2, &mut a2);
        let sum: Vec<f64> = phi1
            .iter()
            .zip(&phi2)
            .map(|(a, b)| 2.0 * a - 3.0 * b)
            .collect();
        solver.apply(&sum, &mut a12);
        for i in 0..n {
            let expect = 2.0 * a1[i] - 3.0 * a2[i];
            assert!((a12[i] - expect).abs() < 1e-10 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn constant_density_maps_to_constant() {
        // Gauss identity at the operator level: for φ ≡ c the interior
        // limit of Dφ is exactly c (jump c/2 + PV value c/2)
        let opts = BieOptions {
            eta: 2,
            check: CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            backend: MatvecBackend::Dense,
            null_space: false,
            ..Default::default()
        };
        let solver = laplace_solver(1, 8, opts);
        let phi = vec![1.0; solver.dim()];
        let mut out = vec![0.0; solver.dim()];
        solver.apply(&phi, &mut out);
        for (l, v) in out.iter().enumerate() {
            assert!((v - 1.0).abs() < 5e-4, "node {l}: {v}");
        }
    }
}
