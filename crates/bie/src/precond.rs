//! Coarse-grid (two-level) preconditioner for the Nyström boundary solve —
//! **experimental, off by default** (`BieOptions::precond`).
//!
//! ## Summary of what was tried and measured
//!
//! The natural preconditioner family for this solver was explored in
//! depth; the measurements (sphere/capsule geometries, Laplace and Stokes
//! kernels) are worth recording because they explain the default:
//!
//! 1. **Per-patch block-Jacobi** (assemble each patch's self-block of
//!    `A = 1/2 I + D (+ N)` — `E · K_pp · W · U`, the extrapolated
//!    same-patch interaction — and LU-invert it): the check-point
//!    quadrature *damps* the highest-frequency densities a patch can
//!    represent (their layer potential decays away within the check-point
//!    distance `R ~ 0.15 L̂`), so the self-blocks have singular values
//!    sliding continuously from `σ_max` down to `~10⁻⁴ σ_max` with no
//!    gap. The exact inverse amplifies the damped modes by `~10⁴` and
//!    GMRES stalls three orders of magnitude above the tolerance.
//!    Clamped-SVD and truncated-subspace block inverses fail the same
//!    way, because Clenshaw–Curtis nodes cluster at patch *edges*: the
//!    mid-frequency modes couple to neighboring patches as strongly as to
//!    their own patch, so no purely local inverse helps.
//! 2. **Global coarse-grid correction** (this module): discretize the
//!    same operator on a coarser `q_c ≈ q/2` per-patch grid (density at
//!    `q_c`, integration kept at full order), assemble the dense coarse
//!    operator patch-pair by patch-pair, solve it in Tikhonov-regularized
//!    normal-equations form, and apply `M⁻¹ = I + P (A_c⁻¹ − I) R` with
//!    interpolation `P` and weighted-projection restriction `R`
//!    (`R P = I`, near-annihilation of aliased high frequencies). The
//!    assembled coarse operator is verified accurate (Gauss identity to
//!    ~1–2%, smooth-mode inversion to ~5%), yet preconditioned GMRES
//!    still converges *slower* than plain GMRES: the dense spectrum of
//!    the discrete operator itself decays continuously (half of all
//!    singular values sit below `0.1 σ_max` at production orders), so any
//!    correction leaks error into the band of half-resolved modes where
//!    `A M⁻¹` is far from the identity.
//!
//! The plain iteration converges quickly precisely because a smooth
//! right-hand side never excites the damped band — and the warm start
//! carried by `sim::stepper` (previous step's density) compounds that.
//! The machinery here is kept for experimentation on geometries with a
//! cleaner spectral gap (enable per scenario with `bie_precond = true`);
//! the unit tests pin the assembly's correctness.

use crate::fine::FineDiscretization;
use crate::solver::{CheckSpec, LayerKernel};
use linalg::{checkpoint_extrapolation_weights, LinearOperator, Lu, Mat};
use patch::{patch_interp_matrix, BoundarySurface};

/// Relative Tikhonov regularization of the coarse solve: `λ = REG · σ_max`.
/// Directions the coarse quadrature resolves better than `REG · σ_max` are
/// inverted almost exactly; the damped tail is amplified at most `1/(2λ)`.
const REG: f64 = 0.05;

/// Hard cap on the coarse-space dimension: the dense normal matrix and its
/// LU are O(n³); beyond this the per-patch coarse order `q_c` shrinks
/// (large patch counts still get a useful global coarse space from 2×2
/// nodes per patch).
const MAX_COARSE_DIM: usize = 2304;

/// Two-level coarse-grid preconditioner for [`crate::DoubleLayerSolver`].
pub struct CoarseGridPrecond {
    /// Unknowns per patch on the fine (solver) grid: `q² · value_dim`.
    block: usize,
    /// Unknowns per patch on the coarse grid: `q_c² · value_dim`.
    low: usize,
    /// Number of patches.
    num_patches: usize,
    /// Coarse→fine interpolation per patch (vd-interleaved, shared).
    pv: Mat,
    /// Fine→coarse restriction per patch (vd-interleaved, shared).
    rv: Mat,
    /// Transpose of the dense coarse operator (for the normal-equations
    /// right-hand side `A_cᵀ r`).
    at: Mat,
    /// LU factor of the regularized normal matrix `A_cᵀ A_c + λ² I`;
    /// `None` disables the correction (singular factorization — not
    /// observed in practice).
    coarse_lu: Option<Lu>,
}

impl CoarseGridPrecond {
    /// Discretizes the boundary operator on the `q_c = ⌈q/2⌉` coarse grid
    /// of `surface`, assembles the dense coarse operator (including the
    /// null-space completion when `null_space` is set), and factors it.
    ///
    /// `check` and `p_extrap` must match the solver's options so the
    /// coarse operator discretizes the same interior-limit scheme.
    pub fn build<K: LayerKernel>(
        kernel: &K,
        surface: &BoundarySurface,
        check: CheckSpec,
        p_extrap: usize,
        null_space: bool,
    ) -> CoarseGridPrecond {
        let (a_low, pv, rv, block, low, num_patches) =
            assemble_coarse(kernel, surface, check, p_extrap, null_space);

        // Tikhonov-regularized coarse solve. The coarse operator has its
        // own damped-frequency tail (σ down to ~10⁻² σ_max); an exact LU
        // inverse would re-create at the coarse level the amplification
        // problem the two-level design avoids at the fine level. The
        // normal-equations form `(A_cᵀ A_c + λ² I)⁻¹ A_cᵀ` with
        // `λ = REG · σ_max` inverts the resolved directions to within
        // `λ²/σ²` and bounds the amplification of the tail by `1/(2λ)`.
        let n_low = a_low.rows();
        let at = a_low.transpose();
        let mut ata = Mat::zeros(n_low, n_low);
        linalg::gemm_acc(
            n_low,
            n_low,
            n_low,
            1.0,
            at.data(),
            a_low.data(),
            ata.data_mut(),
        );
        // σ_max² via power iteration on the (symmetric) normal matrix
        let mut v = vec![1.0 / (n_low as f64).sqrt(); n_low];
        let mut w = vec![0.0; n_low];
        let mut sigma2 = 1.0;
        for _ in 0..16 {
            ata.matvec_into(&v, &mut w);
            sigma2 = linalg::norm2(&w);
            if sigma2 == 0.0 {
                break;
            }
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / sigma2;
            }
        }
        let lambda2 = REG * REG * sigma2;
        for i in 0..n_low {
            ata[(i, i)] += lambda2;
        }
        CoarseGridPrecond {
            block,
            low,
            num_patches,
            pv,
            rv,
            at,
            coarse_lu: Lu::new(&ata),
        }
    }

    /// Dimension of the coarse space.
    pub fn coarse_dim(&self) -> usize {
        self.low * self.num_patches
    }
}

/// Assembles the dense coarse operator and the transfer matrices; split
/// from [`CoarseGridPrecond::build`] so tests can inspect the raw matrix.
#[allow(clippy::type_complexity)]
fn assemble_coarse<K: LayerKernel>(
    kernel: &K,
    surface: &BoundarySurface,
    check: CheckSpec,
    p_extrap: usize,
    null_space: bool,
) -> (Mat, Mat, Mat, usize, usize, usize) {
    let vd = kernel.value_dim();
    let sd = kernel.src_dim();
    let q = surface.q;
    let num_patches = surface.num_patches();
    let mut qc = q.div_ceil(2).max(2);
    while qc > 2 && num_patches * qc * qc * vd > MAX_COARSE_DIM {
        qc -= 1;
    }
    let block = q * q * vd;
    let nlow = qc * qc; // coarse nodes per patch
    let low = nlow * vd;
    let n_low = num_patches * low;

    // coarse discretization of the same surface: the *density* lives on
    // the q_c grid, but the integration (fine nodes) keeps the full
    // order q — the check points sit at R ~ 0.15 L̂ from the surface,
    // and a q_c-order rule cannot resolve the near-singular integrand
    // there (measured: the assembled coarse operator turns garbage)
    let surface_c = BoundarySurface {
        q: qc,
        patches: surface.patches.clone(),
        kinds: surface.kinds.clone(),
    };
    let quad_c = surface_c.quadrature();
    let fine_c = FineDiscretization::build(&surface_c, 1, q);
    let nf = fine_c.per_patch;
    let p1 = p_extrap + 1;
    let mut check_pts = Vec::with_capacity(quad_c.len() * p1);
    for l in 0..quad_c.len() {
        let l_hat = quad_c.patch_size(quad_c.patch_of[l] as usize);
        let (big_r, r) = check.distances(l_hat);
        for i in 0..p1 {
            let t = big_r + i as f64 * r;
            check_pts.push(quad_c.points[l] - quad_c.normals[l] * t);
        }
    }
    let (r0, rr) = check.distances(1.0);
    let extrap_w = checkpoint_extrapolation_weights(r0, rr, p_extrap, 0.0);

    // transfer operators between the q and q_c tensor grids (u fastest,
    // matching the patch-major node ordering of `SurfaceQuad`)
    let grid = |n: usize| -> Vec<(f64, f64)> {
        let nodes = linalg::clenshaw_curtis(n).nodes;
        let mut g = Vec::with_capacity(n * n);
        for &v in &nodes {
            for &u in &nodes {
                g.push((u, v));
            }
        }
        g
    };
    let p_mat = patch_interp_matrix(qc, &grid(q)); // (q² × q_c²)
                                                   // Restriction as the weighted least-squares projection
                                                   // `R = (Pᵀ W P)⁻¹ Pᵀ W` (parameter-space Clenshaw–Curtis weights).
                                                   // Point-sampling the residual at the coarse nodes instead would alias
                                                   // high-frequency fine-grid content onto the coarse grid at O(1) and the
                                                   // correction would inject spurious smooth modes (measured: GMRES
                                                   // stalls). The projection keeps `R P = I` while nearly annihilating
                                                   // oscillatory modes.
    let wq = {
        let w1 = linalg::clenshaw_curtis(q).weights;
        let mut w = Vec::with_capacity(q * q);
        for &wv in &w1 {
            for &wu in &w1 {
                w.push(wu * wv);
            }
        }
        w
    };
    let mut ptw = Mat::zeros(qc * qc, q * q); // Pᵀ W
    for r in 0..qc * qc {
        for c in 0..q * q {
            ptw[(r, c)] = p_mat[(c, r)] * wq[c];
        }
    }
    let ptwp = ptw.matmul(&p_mat);
    let r_mat = Lu::new(&ptwp)
        .map(|lu| lu.solve_mat(&ptw))
        .unwrap_or_else(|| patch_interp_matrix(q, &grid(qc)));
    let pv = interleave(&p_mat, vd);
    let rv = interleave(&r_mat, vd);

    // assemble the dense coarse operator row-strip by target patch
    let uu = interleave(&fine_c.upsample, vd); // (nf·vd × nlow·vd)
    let strips: Vec<Mat> = rayon::par::map_indexed(num_patches, |pt| {
        let mut strip = Mat::zeros(low, n_low);
        let mut c_pair = Mat::zeros(low, nf * vd);
        let mut unit = vec![0.0; vd];
        let mut src = vec![0.0; sd];
        let mut val = vec![0.0; vd];
        for ps in 0..num_patches {
            // C[(l·vd+c),(j·vd+d)]: extrapolated kernel action of a
            // unit fine density component d (source patch ps) on coarse
            // node l (target patch pt)
            c_pair.data_mut().fill(0.0);
            for j in 0..nf {
                let jg = ps * nf + j;
                for d in 0..vd {
                    unit[d] = 1.0;
                    kernel.pack(&unit, fine_c.normals[jg], fine_c.weights[jg], &mut src);
                    unit[d] = 0.0;
                    for l in 0..nlow {
                        let lg = pt * nlow + l;
                        let col = j * vd + d;
                        for (i, &ew) in extrap_w.iter().enumerate() {
                            for v in val.iter_mut() {
                                *v = 0.0;
                            }
                            kernel.eval_acc(
                                check_pts[lg * p1 + i],
                                fine_c.points[jg],
                                &src,
                                &mut val,
                            );
                            for (c, &vc) in val.iter().enumerate() {
                                c_pair[(l * vd + c, col)] += ew * vc;
                            }
                        }
                    }
                }
            }
            let b_pair = c_pair.matmul(&uu);
            for r in 0..low {
                strip.row_mut(r)[ps * low..(ps + 1) * low].copy_from_slice(b_pair.row(r));
            }
        }
        strip
    });
    let mut a_low = Mat::zeros(n_low, n_low);
    for (pt, strip) in strips.iter().enumerate() {
        for r in 0..low {
            a_low.row_mut(pt * low + r).copy_from_slice(strip.row(r));
        }
    }

    // global null-space completion at the coarse nodes, mirroring the
    // solver's matvec: A += n ⊗ (w n) / |Γ|
    if null_space && vd == 3 {
        let inv_area = 1.0 / quad_c.total_area();
        for l in 0..quad_c.len() {
            let nl = quad_c.normals[l];
            for m in 0..quad_c.len() {
                let wn = quad_c.normals[m] * (quad_c.weights[m] * inv_area);
                for (c, nlc) in [nl.x, nl.y, nl.z].iter().enumerate() {
                    a_low[(l * vd + c, m * vd)] += nlc * wn.x;
                    a_low[(l * vd + c, m * vd + 1)] += nlc * wn.y;
                    a_low[(l * vd + c, m * vd + 2)] += nlc * wn.z;
                }
            }
        }
    }

    (a_low, pv, rv, block, low, num_patches)
}

/// Kronecker-interleaves a scalar (node × node) matrix with `I_vd` so it
/// acts on `vd`-component nodal vectors: `out[(i·vd+c),(j·vd+c)] = m[(i,j)]`.
fn interleave(m: &Mat, vd: usize) -> Mat {
    let mut out = Mat::zeros(m.rows() * vd, m.cols() * vd);
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let v = m[(i, j)];
            if v != 0.0 {
                for c in 0..vd {
                    out[(i * vd + c, j * vd + c)] = v;
                }
            }
        }
    }
    out
}

impl LinearOperator for CoarseGridPrecond {
    fn dim(&self) -> usize {
        self.block * self.num_patches
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let Some(lu) = &self.coarse_lu else {
            y.copy_from_slice(x);
            return;
        };
        // restrict: r = R x (patch-blocked)
        let mut r = vec![0.0; self.coarse_dim()];
        for p in 0..self.num_patches {
            self.rv.matvec_into(
                &x[p * self.block..(p + 1) * self.block],
                &mut r[p * self.low..(p + 1) * self.low],
            );
        }
        // regularized coarse correction: c = (A_cᵀA_c + λ²)⁻¹ A_cᵀ r − r
        let rhs = self.at.matvec(&r);
        let mut corr = lu.solve(&rhs);
        for (c, ri) in corr.iter_mut().zip(&r) {
            *c -= ri;
        }
        // prolong: y = x + P c
        y.copy_from_slice(x);
        for p in 0..self.num_patches {
            let yb = &mut y[p * self.block..(p + 1) * self.block];
            self.pv
                .matvec_acc(&corr[p * self.low..(p + 1) * self.low], 1.0, yb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{BieOptions, DoubleLayerSolver, MatvecBackend};
    use kernels::LaplaceDL;
    use linalg::{norm2, Vec3};
    use patch::cube_sphere;

    /// The assembled coarse operator must satisfy the Gauss identity: a
    /// constant density maps to itself (eigenvalue 1 of `1/2 I + D` on the
    /// interior limit).
    #[test]
    fn coarse_operator_constant_density() {
        // sub=1 keeps the whole check-point family inside the sphere
        // (at sub=0 the far check points exit through the far surface)
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 6);
        let (a_low, _pv, _rv, _block, low, np) = assemble_coarse(
            &LaplaceDL,
            &s,
            crate::solver::CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            8,
            false,
        );
        let n = low * np;
        let ones = vec![1.0; n];
        let out = a_low.matvec(&ones);
        for (l, v) in out.iter().enumerate() {
            // coarse-scheme discretization error (worst at the corner
            // nodes of the q_c grid); M only preconditions, so the test
            // pins "assembly is sane", not solver-grade accuracy
            assert!((v - 1.0).abs() < 8e-2, "coarse node {l}: {v}");
        }
    }

    /// Same Gauss identity for the Stokes double layer: a constant vector
    /// density maps to itself.
    #[test]
    fn coarse_operator_constant_density_stokes() {
        use kernels::StokesDL;
        let s = cube_sphere(1.0, linalg::Vec3::ZERO, 1, 8);
        let (a_low, _pv, _rv, _block, low, np) = assemble_coarse(
            &StokesDL,
            &s,
            crate::solver::CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            8,
            false,
        );
        let n = low * np;
        let mut c = vec![0.0; n];
        for k in 0..n / 3 {
            c[k * 3] = 1.0;
            c[k * 3 + 1] = -0.5;
            c[k * 3 + 2] = 2.0;
        }
        let out = a_low.matvec(&c);
        // the Stokes double-layer kernel is harder on the cheap coarse
        // quadrature than Laplace: corner dofs of the q_c grid reach ~25%
        // pointwise error, so pin the aggregate instead — an RMS bound
        // still catches assembly-level breakage (sign/layout/weight bugs
        // put *every* dof off by ~100%)
        let mut num = 0.0;
        let mut den = 0.0;
        for (v, e) in out.iter().zip(&c) {
            num += (v - e) * (v - e);
            den += e * e;
        }
        let rms = (num / den).sqrt();
        assert!(rms < 0.08, "coarse Stokes operator RMS error {rms}");
    }

    /// On a smooth density the preconditioner must act as an approximate
    /// inverse of the whole operator: `M⁻¹ A φ ≈ φ`, much closer than
    /// `A φ` itself is.
    #[test]
    fn coarse_correction_inverts_smooth_modes() {
        let opts = BieOptions {
            eta: 1,
            backend: MatvecBackend::Dense,
            null_space: false,
            precond: true,
            ..Default::default()
        };
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 6);
        let solver = DoubleLayerSolver::new(s, LaplaceDL, kernels::LaplaceSL, opts);
        let m = solver.precond().expect("preconditioner built");
        let n = solver.dim();
        // a globally smooth density: linear function of position
        let phi: Vec<f64> = solver
            .quad
            .points
            .iter()
            .map(|p| 1.0 + 0.7 * p.x - 0.4 * p.z)
            .collect();
        assert_eq!(phi.len(), n);
        let mut aphi = vec![0.0; n];
        solver.apply(&phi, &mut aphi);
        let mut maphi = vec![0.0; n];
        m.apply(&aphi, &mut maphi);
        let scale = norm2(&phi);
        let err_pre: f64 = phi
            .iter()
            .zip(&maphi)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let err_raw: f64 = phi
            .iter()
            .zip(&aphi)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            err_pre < 0.15 * scale,
            "coarse correction too weak: err {err_pre} vs scale {scale}"
        );
        assert!(
            err_pre < 0.7 * err_raw,
            "M⁻¹A no better than A: {err_pre} vs {err_raw}"
        );
    }
}
