//! # bie — the parallel boundary integral solver (§3 of the paper)
//!
//! Solves the exterior-boundary contribution `u_Γ` of the confined Stokes
//! flow: the double-layer equation `(1/2 I + D + N) φ = g − u_fr` on a
//! patch-based vessel boundary, discretized with the Nyström method and
//! the unified singular/near-singular quadrature of §3.1 (upsampled fine
//! discretization, check points along the interior normal, 1-D polynomial
//! extrapolation), with GMRES as the outer iteration and the
//! kernel-independent FMM for all far-field sums.
//!
//! The solver is generic over the layer kernel, demonstrating the "general
//! elliptic PDEs" claim: the tests exercise the interior Laplace Dirichlet
//! problem alongside the Stokes problem the simulation uses.

#![warn(missing_docs)]

pub mod closest;
pub mod fine;
pub mod precond;
pub mod solver;

pub use closest::{closest_points, ClosestHit};
pub use fine::FineDiscretization;
pub use fmm::FmmOptions;
pub use precond::CoarseGridPrecond;
pub use solver::{BieOptions, CheckSpec, DoubleLayerSolver, LayerKernel, MatvecBackend};
