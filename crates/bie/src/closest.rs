//! Parallel closest-point search (§3.3).
//!
//! For every query point we must decide whether it is in the near-zone of
//! the boundary (requiring near-singular integration) and, if so, find the
//! closest point on Γ. Steps (matching the paper's a–e):
//!
//! a. inflate each patch's bounding box by its near-zone distance `d_ε`;
//! b./c. spatial-hash the boxes and query points and sort to collect
//!    candidate (patch, point) pairs (`octree::box_point_candidates`, with
//!    rayon's parallel sort standing in for HykSort);
//! d. run Newton with backtracking on each candidate pair;
//! e. reduce over candidates to the globally closest patch per point.

use linalg::Vec3;
use octree::{box_point_candidates, mean_diagonal_spacing, SpatialHash};
use patch::{BoundarySurface, SurfaceQuad};
use rayon::prelude::*;

/// Result of a closest-point query that landed in the near zone.
#[derive(Clone, Copy, Debug)]
pub struct ClosestHit {
    /// Patch containing the closest point.
    pub patch: u32,
    /// Parameter coordinates of the closest point.
    pub u: f64,
    /// Parameter coordinates of the closest point.
    pub v: f64,
    /// Distance from the query to the closest point.
    pub dist: f64,
    /// The closest point itself.
    pub point: Vec3,
    /// Outward unit normal at the closest point.
    pub normal: Vec3,
}

/// Finds, for each target, the closest boundary point if the target lies
/// within `near_factor · L̂(patch)` of some patch (L̂ = √patch-area, the
/// paper's patch size). Returns `None` for far targets.
pub fn closest_points(
    surface: &BoundarySurface,
    quad: &SurfaceQuad,
    targets: &[Vec3],
    near_factor: f64,
) -> Vec<Option<ClosestHit>> {
    if targets.is_empty() {
        return Vec::new();
    }
    // a. inflated near-zone boxes
    let raw_boxes = surface.patch_boxes(6);
    let d_eps: Vec<f64> = (0..surface.num_patches())
        .map(|pi| near_factor * quad.patch_size(pi))
        .collect();
    let boxes: Vec<linalg::Aabb> = raw_boxes
        .iter()
        .zip(&d_eps)
        .map(|(b, d)| b.inflated(*d))
        .collect();

    // b./c. hash + sort to find candidates
    let grid = SpatialHash::new(mean_diagonal_spacing(&boxes), Vec3::ZERO);
    let mut cands = box_point_candidates(&boxes, targets, &grid);
    // group by target
    cands.par_sort_unstable_by_key(|&(_, t)| t);

    // d./e. Newton per candidate, reduce per target
    let mut result: Vec<Option<ClosestHit>> = vec![None; targets.len()];
    // build run offsets
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut s = 0;
    for i in 1..=cands.len() {
        if i == cands.len() || cands[i].1 != cands[s].1 {
            runs.push((s, i));
            s = i;
        }
    }
    // one slot per run (= per target with candidates), committed in run
    // order; within a run the candidate reduction order is fixed by the
    // sorted candidate list, so the result is thread-count-deterministic
    let hits: Vec<(u32, Option<ClosestHit>)> = rayon::par::map_indexed(runs.len(), |ri| {
        let (a, b) = runs[ri];
        let t = cands[a].1;
        let x = targets[t as usize];
        let mut best: Option<ClosestHit> = None;
        for &(pi, _) in &cands[a..b] {
            let patch = &surface.patches[pi as usize];
            let (u, v, dist) = patch.closest_point(x);
            if dist <= d_eps[pi as usize] {
                let better = best.map(|h| dist < h.dist).unwrap_or(true);
                if better {
                    let (p, xu, xv) = patch.eval_jet(u, v);
                    best = Some(ClosestHit {
                        patch: pi,
                        u,
                        v,
                        dist,
                        point: p,
                        normal: xu.cross(xv).normalized(),
                    });
                }
            }
        }
        (t, best)
    });
    for (t, h) in hits {
        result[t as usize] = h;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::cube_sphere;

    #[test]
    fn near_points_get_hits_far_points_dont() {
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 8);
        let quad = s.quadrature();
        let l = quad.patch_size(0);
        let targets = vec![
            Vec3::new(1.0 - 0.1 * l, 0.0, 0.0), // near inside
            Vec3::new(0.2, 0.1, 0.0),           // deep inside: far
            Vec3::new(0.0, 0.0, 1.0 - 0.3 * l), // near pole
        ];
        let hits = closest_points(&s, &quad, &targets, 1.0);
        assert!(hits[0].is_some());
        assert!(hits[1].is_none());
        assert!(hits[2].is_some());
        let h = hits[0].unwrap();
        // closest point on the sphere along +x
        assert!(
            (h.point - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-4,
            "{:?}",
            h.point
        );
        assert!((h.dist - 0.1 * l).abs() < 1e-4);
        assert!(h.normal.dot(Vec3::new(1.0, 0.0, 0.0)) > 0.999);
    }

    #[test]
    fn matches_brute_force_distance() {
        let s = cube_sphere(1.3, Vec3::new(0.2, -0.1, 0.4), 1, 8);
        let quad = s.quadrature();
        let mut targets = Vec::new();
        // ring of points just inside the sphere
        for k in 0..12 {
            let a = 2.0 * std::f64::consts::PI * k as f64 / 12.0;
            targets.push(Vec3::new(0.2 + 1.25 * a.cos(), -0.1 + 1.25 * a.sin(), 0.4));
        }
        let hits = closest_points(&s, &quad, &targets, 2.0);
        for (i, hit) in hits.iter().enumerate() {
            let h = hit.expect("ring point should be near");
            // brute force over all patches
            let mut best = f64::INFINITY;
            for p in &s.patches {
                let (_, _, d) = p.closest_point(targets[i]);
                best = best.min(d);
            }
            assert!(
                (h.dist - best).abs() < 1e-6,
                "target {i}: {} vs {best}",
                h.dist
            );
            // true distance to sphere is 0.05
            assert!((h.dist - 0.05).abs() < 1e-3, "target {i}: {}", h.dist);
        }
    }

    #[test]
    fn empty_targets_ok() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let quad = s.quadrature();
        assert!(closest_points(&s, &quad, &[], 1.0).is_empty());
    }
}
