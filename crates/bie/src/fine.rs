//! The fine discretization of §3.1: η levels of patch subdivision with a
//! tensor Clenshaw–Curtis rule on every subpatch, plus the parameter-space
//! upsampling operator `U` from the coarse grid.
//!
//! The schematic of Fig. 2 uses η = 2 (16 subpatches) with 11th-order rules;
//! the production configuration of §5.1 uses η = 1. Both are options here.

use linalg::{clenshaw_curtis, Mat, Vec3};
use patch::{patch_interp_matrix, BoundarySurface};

/// Fine (upsampled) quadrature nodes for near-singular integration.
#[derive(Clone, Debug)]
pub struct FineDiscretization {
    /// Subdivision depth η (each patch splits into `4^η` subpatches).
    pub eta: u32,
    /// Clenshaw–Curtis order per subpatch direction.
    pub qf: usize,
    /// Fine nodes, patch-major.
    pub points: Vec<Vec3>,
    /// Outward unit normals at the fine nodes.
    pub normals: Vec<Vec3>,
    /// Quadrature weights (Jacobian included).
    pub weights: Vec<f64>,
    /// Fine nodes per patch: `4^η · qf²`.
    pub per_patch: usize,
    /// Parameter-space interpolation from the coarse `q²` grid to the fine
    /// nodes of one patch (identical for every patch).
    pub upsample: Mat,
}

impl FineDiscretization {
    /// Builds the fine discretization of a surface.
    pub fn build(surface: &BoundarySurface, eta: u32, qf: usize) -> FineDiscretization {
        let k = 1usize << eta; // subpatches per direction
        let rule = clenshaw_curtis(qf);
        let per_patch = k * k * qf * qf;

        // fine parameter points in the root patch domain (same per patch)
        let mut params = Vec::with_capacity(per_patch);
        for sv in 0..k {
            let v0 = -1.0 + 2.0 * sv as f64 / k as f64;
            let v1 = -1.0 + 2.0 * (sv + 1) as f64 / k as f64;
            for su in 0..k {
                let u0 = -1.0 + 2.0 * su as f64 / k as f64;
                let u1 = -1.0 + 2.0 * (su + 1) as f64 / k as f64;
                for &tv in &rule.nodes {
                    let v = 0.5 * (v0 + v1) + 0.5 * (v1 - v0) * tv;
                    for &tu in &rule.nodes {
                        let u = 0.5 * (u0 + u1) + 0.5 * (u1 - u0) * tu;
                        params.push((u, v));
                    }
                }
            }
        }
        let upsample = patch_interp_matrix(surface.q, &params);

        // weight of each fine node in the root parameter domain
        let scale = (1.0 / k as f64) * (1.0 / k as f64);
        let mut param_w = Vec::with_capacity(per_patch);
        for _ in 0..(k * k) {
            for wj in &rule.weights {
                for wi in &rule.weights {
                    param_w.push(wi * wj * scale);
                }
            }
        }

        // one slot per patch, committed in patch order — bit-identical at
        // any thread count
        let per: Vec<(Vec<Vec3>, Vec<Vec3>, Vec<f64>)> =
            rayon::par::map_indexed(surface.patches.len(), |pi| {
                let p = &surface.patches[pi];
                let mut pts = Vec::with_capacity(per_patch);
                let mut nrm = Vec::with_capacity(per_patch);
                let mut wts = Vec::with_capacity(per_patch);
                for (idx, &(u, v)) in params.iter().enumerate() {
                    let (x, xu, xv) = p.eval_jet(u, v);
                    let nr = xu.cross(xv);
                    let jac = nr.norm();
                    pts.push(x);
                    nrm.push(nr.normalized());
                    wts.push(param_w[idx] * jac);
                }
                (pts, nrm, wts)
            });

        let mut out = FineDiscretization {
            eta,
            qf,
            points: Vec::with_capacity(per_patch * surface.num_patches()),
            normals: Vec::with_capacity(per_patch * surface.num_patches()),
            weights: Vec::with_capacity(per_patch * surface.num_patches()),
            per_patch,
            upsample,
        };
        for (pts, nrm, wts) in per {
            out.points.extend(pts);
            out.normals.extend(nrm);
            out.weights.extend(wts);
        }
        out
    }

    /// Number of fine nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the discretization is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Upsamples a density with `vd` components per coarse node
    /// (patch-major, `q²` nodes per patch) to the fine nodes, in parallel
    /// over patches.
    pub fn upsample_density(
        &self,
        coarse: &[f64],
        vd: usize,
        num_patches: usize,
        q: usize,
    ) -> Vec<f64> {
        let mut fine = Vec::new();
        self.upsample_density_into(coarse, vd, num_patches, q, &mut fine);
        fine
    }

    /// Like [`FineDiscretization::upsample_density`], but writes into a
    /// caller-owned buffer (resized as needed) so the GMRES matvec can
    /// recycle its scratch allocations across iterations.
    pub fn upsample_density_into(
        &self,
        coarse: &[f64],
        vd: usize,
        num_patches: usize,
        q: usize,
        fine: &mut Vec<f64>,
    ) {
        let nc = q * q;
        assert_eq!(coarse.len(), num_patches * nc * vd, "coarse density length");
        let nf = self.per_patch;
        fine.clear();
        fine.resize(num_patches * nf * vd, 0.0);
        // per-patch chunks are disjoint and each is written by exactly one
        // dispatched index, so the fill is thread-count-deterministic; this
        // runs once per GMRES iteration, so it is a step hot loop
        rayon::par::chunks_mut(fine, nf * vd, |pi, chunk| {
            // interpolate each component separately
            let mut comp = vec![0.0; nc];
            let mut res;
            for c in 0..vd {
                for m in 0..nc {
                    comp[m] = coarse[(pi * nc + m) * vd + c];
                }
                res = self.upsample.matvec(&comp);
                for (m, val) in res.iter().enumerate() {
                    chunk[m * vd + c] = *val;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::cube_sphere;

    #[test]
    fn fine_weights_integrate_area() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 8);
        let fine = FineDiscretization::build(&s, 1, 8);
        assert_eq!(fine.per_patch, 4 * 64);
        let area: f64 = fine.weights.iter().sum();
        let coarse_area = s.quadrature().total_area();
        // both approximate the same polynomial surface's area
        assert!(
            (area - coarse_area).abs() / coarse_area < 1e-4,
            "{area} vs {coarse_area}"
        );
    }

    #[test]
    fn upsampling_exact_for_smooth_fields() {
        // subdivided sphere: interpolation error of the composed map decays
        // like L^q with the patch size
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 8);
        let quad = s.quadrature();
        let fine = FineDiscretization::build(&s, 1, 8);
        // a smooth scalar field evaluated at the coarse nodes
        let f = |p: Vec3| (1.5 * p.x).sin() + p.y * p.z;
        let coarse: Vec<f64> = quad.points.iter().map(|&p| f(p)).collect();
        let fine_vals = fine.upsample_density(&coarse, 1, s.num_patches(), s.q);
        let mut max_err = 0.0_f64;
        for (i, &p) in fine.points.iter().enumerate() {
            max_err = max_err.max((fine_vals[i] - f(p)).abs());
        }
        assert!(max_err < 1e-4, "upsampling error {max_err}");
    }

    #[test]
    fn vector_density_layout_roundtrip() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let quad = s.quadrature();
        let fine = FineDiscretization::build(&s, 1, 6);
        // constant vector field upsampled exactly, layout preserved
        let coarse: Vec<f64> = quad.points.iter().flat_map(|_| [1.0, 2.0, 3.0]).collect();
        let up = fine.upsample_density(&coarse, 3, s.num_patches(), s.q);
        for chunk in up.chunks(3) {
            assert!((chunk[0] - 1.0).abs() < 1e-12);
            assert!((chunk[1] - 2.0).abs() < 1e-12);
            assert!((chunk[2] - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deeper_eta_multiplies_nodes() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let f1 = FineDiscretization::build(&s, 1, 6);
        let f2 = FineDiscretization::build(&s, 2, 6);
        assert_eq!(f2.len(), 4 * f1.len());
    }
}
