//! Faithful port of the *seed* FMM evaluation engine, kept as the baseline
//! the perf numbers in `BENCH_fmm.json` and `crates/fmm/README.md` are
//! measured against.
//!
//! This is the pre-arena implementation: a fresh `Vec<f64>` per octree
//! node per pass, per-level `collect` of `(node, Vec)` pairs, one
//! offset-map lookup plus a dense matvec per V-list interaction, a
//! per-interaction zero-scan of the source density, per-node `h.powf`
//! calls, and scalar `eval_acc` loops for S2M/P2L/P2P/L2T/M2T. The
//! production engine (`fmm::Fmm`) replaces all of that with level-major
//! arenas, class-batched GEMM M2L, precomputed scale tables/surfaces, and
//! vectorized `eval_block` kernels — `cargo run --release -p bench --bin
//! fmm_bench` prints both and their ratio.

use fmm::{cached_operators, cube_surface, FmmOperators, FmmOptions, RAD_INNER, RAD_OUTER};
use kernels::Kernel;
use linalg::{Mat, Vec3};
use octree::{Octree, TreeOptions, NONE};
use std::collections::HashMap;
use std::sync::Arc;

/// The seed engine: same tree, same operators, original evaluation.
pub struct SeedFmm<KS: Kernel, KE: Kernel> {
    src_kernel: KS,
    eq_kernel: KE,
    ops: Arc<FmmOperators>,
    /// Untransposed per-offset M2L operators, exactly the seed's layout
    /// (reconstructed from the class-indexed transposed store).
    m2l: HashMap<(i8, i8, i8), Mat>,
    tree: Octree,
    src_pts: Vec<Vec3>,
    trg_pts: Vec<Vec3>,
    n_trg: usize,
    sd: usize,
    td: usize,
}

impl<KS: Kernel, KE: Kernel> SeedFmm<KS, KE> {
    pub fn new(
        src_kernel: KS,
        eq_kernel: KE,
        src: &[Vec3],
        trg: &[Vec3],
        opts: FmmOptions,
    ) -> Self {
        let ops = cached_operators(&eq_kernel, opts.order);
        let tree = Octree::build(
            src,
            trg,
            TreeOptions {
                leaf_capacity: opts.leaf_capacity,
                max_depth: opts.max_depth,
            },
        );
        let src_pts: Vec<Vec3> = tree.src_order.iter().map(|&i| src[i as usize]).collect();
        let trg_pts: Vec<Vec3> = tree.trg_order.iter().map(|&i| trg[i as usize]).collect();
        let mut m2l = HashMap::new();
        for dz in -3i8..=3 {
            for dy in -3i8..=3 {
                for dx in -3i8..=3 {
                    if let Some(class) = fmm::ops::m2l_class(dx, dy, dz) {
                        if let Some(t) = &ops.m2l_t[class] {
                            m2l.insert((dx, dy, dz), t.transpose());
                        }
                    }
                }
            }
        }
        let sd = src_kernel.src_dim();
        let td = src_kernel.trg_dim();
        SeedFmm {
            src_kernel,
            eq_kernel,
            ops,
            m2l,
            tree,
            src_pts,
            trg_pts,
            n_trg: trg.len(),
            sd,
            td,
        }
    }

    fn scaled_density(&self, d: &[f64], h: f64) -> Vec<f64> {
        let exps = &self.ops.scale_exps;
        if exps.iter().all(|&e| e == 0) {
            return d.to_vec();
        }
        let dim = self.ops.sdim;
        let mut out = d.to_vec();
        for (j, v) in out.iter_mut().enumerate() {
            let e = exps[j % dim];
            if e != 0 {
                *v *= h.powi(e);
            }
        }
        out
    }

    /// The seed `Fmm::evaluate`, verbatim up to the operator-store rename.
    pub fn evaluate(&self, src_data: &[f64]) -> Vec<f64> {
        assert_eq!(
            src_data.len(),
            self.src_pts.len() * self.sd,
            "source data length"
        );
        let nd_eq = self.ops.n_surf * self.ops.sdim;
        let nd_chk = self.ops.n_surf * self.ops.vdim;
        let nodes = &self.tree.nodes;
        let deg = self.ops.deg;

        // permute source data into Morton order
        let mut data = vec![0.0; src_data.len()];
        for (pos, &orig) in self.tree.src_order.iter().enumerate() {
            let o = orig as usize * self.sd;
            data[pos * self.sd..(pos + 1) * self.sd].copy_from_slice(&src_data[o..o + self.sd]);
        }

        // ---------------- upward pass ----------------
        let mut up_equiv: Vec<Vec<f64>> = vec![Vec::new(); nodes.len()];
        for level in (0..self.tree.levels.len()).rev() {
            let level_nodes = &self.tree.levels[level];
            let results: Vec<(u32, Vec<f64>)> = level_nodes
                .iter()
                .map(|&ni| {
                    let node = &nodes[ni as usize];
                    let h = self.tree.node_half(ni);
                    let center = self.tree.node_center(ni);
                    let mut equiv = vec![0.0; nd_eq];
                    if node.is_leaf {
                        if node.nsrc() > 0 {
                            // S2M: sources -> upward check surface -> density
                            let uc = cube_surface(self.ops.p, center, RAD_OUTER * h);
                            let mut check = vec![0.0; nd_chk];
                            let (a, b) = node.src_range;
                            let pts = &self.src_pts[a as usize..b as usize];
                            let dat = &data[a as usize * self.sd..b as usize * self.sd];
                            for (i, &t) in uc.iter().enumerate() {
                                let o = &mut check[i * self.ops.vdim..(i + 1) * self.ops.vdim];
                                for (j, &s) in pts.iter().enumerate() {
                                    self.src_kernel.eval_acc(
                                        t,
                                        s,
                                        &dat[j * self.sd..(j + 1) * self.sd],
                                        o,
                                    );
                                }
                            }
                            let scale = h.powf(-deg);
                            let mut d = self.ops.uc2ue.matvec(&check);
                            d.iter_mut().for_each(|v| *v *= scale);
                            equiv = d;
                        }
                    } else {
                        // M2M from children (already computed: deeper level)
                        for (o, &c) in node.children.iter().enumerate() {
                            if c != NONE && !up_equiv[c as usize].is_empty() {
                                self.ops.m2m[o].matvec_acc(&up_equiv[c as usize], 1.0, &mut equiv);
                            }
                        }
                    }
                    (ni, equiv)
                })
                .collect();
            for (ni, equiv) in results {
                up_equiv[ni as usize] = equiv;
            }
        }

        // ---------------- downward pass ----------------
        let mut dn_equiv: Vec<Vec<f64>> = vec![Vec::new(); nodes.len()];
        for level in 0..self.tree.levels.len() {
            let level_nodes = &self.tree.levels[level];
            let results: Vec<(u32, Vec<f64>)> = level_nodes
                .iter()
                .map(|&ni| {
                    let node = &nodes[ni as usize];
                    let h = self.tree.node_half(ni);
                    let center = self.tree.node_center(ni);
                    let mut check = vec![0.0; nd_chk];
                    let mut any = false;

                    // M2L from the V list
                    if !node.v_list.is_empty() {
                        let (tx, ty, tz) = node.key.anchor();
                        let kscale = h.powf(deg);
                        for &v in &node.v_list {
                            let src_equiv = &up_equiv[v as usize];
                            if src_equiv.is_empty() || src_equiv.iter().all(|&x| x == 0.0) {
                                continue;
                            }
                            let (sx, sy, sz) = nodes[v as usize].key.anchor();
                            let off = (
                                (sx as i64 - tx as i64) as i8,
                                (sy as i64 - ty as i64) as i8,
                                (sz as i64 - tz as i64) as i8,
                            );
                            let m = self
                                .m2l
                                .get(&off)
                                .expect("V-list offset outside precomputed M2L set");
                            m.matvec_acc(src_equiv, kscale, &mut check);
                            any = true;
                        }
                    }

                    // P2L from the X list
                    if !node.x_list.is_empty() {
                        let dc = cube_surface(self.ops.p, center, RAD_INNER * h);
                        for &x in &node.x_list {
                            let xn = &nodes[x as usize];
                            let (a, b) = xn.src_range;
                            if a == b {
                                continue;
                            }
                            let pts = &self.src_pts[a as usize..b as usize];
                            let dat = &data[a as usize * self.sd..b as usize * self.sd];
                            for (i, &t) in dc.iter().enumerate() {
                                let o = &mut check[i * self.ops.vdim..(i + 1) * self.ops.vdim];
                                for (j, &s) in pts.iter().enumerate() {
                                    self.src_kernel.eval_acc(
                                        t,
                                        s,
                                        &dat[j * self.sd..(j + 1) * self.sd],
                                        o,
                                    );
                                }
                            }
                            any = true;
                        }
                    }

                    let mut equiv = if any {
                        let scale = h.powf(-deg);
                        let mut d = self.ops.dc2de.matvec(&check);
                        d.iter_mut().for_each(|v| *v *= scale);
                        d
                    } else {
                        Vec::new()
                    };

                    // L2L from the parent
                    if node.parent != NONE {
                        let pd = &dn_equiv[node.parent as usize];
                        if !pd.is_empty() {
                            if equiv.is_empty() {
                                equiv = vec![0.0; nd_eq];
                            }
                            let oct = node.key.child_index();
                            self.ops.l2l[oct].matvec_acc(pd, 1.0, &mut equiv);
                        }
                    }
                    (ni, equiv)
                })
                .collect();
            for (ni, equiv) in results {
                dn_equiv[ni as usize] = equiv;
            }
        }

        // ---------------- leaf evaluation ----------------
        let leaves = self.tree.leaves();
        let chunks: Vec<(u32, Vec<f64>)> = leaves
            .iter()
            .filter(|&&li| nodes[li as usize].ntrg() > 0)
            .map(|&li| {
                let node = &nodes[li as usize];
                let (t0, t1) = node.trg_range;
                let trgs = &self.trg_pts[t0 as usize..t1 as usize];
                let mut out = vec![0.0; trgs.len() * self.td];

                // P2P over the U list
                for &u in &node.u_list {
                    let un = &nodes[u as usize];
                    let (a, b) = un.src_range;
                    if a == b {
                        continue;
                    }
                    let pts = &self.src_pts[a as usize..b as usize];
                    let dat = &data[a as usize * self.sd..b as usize * self.sd];
                    for (i, &t) in trgs.iter().enumerate() {
                        let o = &mut out[i * self.td..(i + 1) * self.td];
                        for (j, &s) in pts.iter().enumerate() {
                            self.src_kernel
                                .eval_acc(t, s, &dat[j * self.sd..(j + 1) * self.sd], o);
                        }
                    }
                }

                // L2T: own downward equivalent density
                let dn = &dn_equiv[li as usize];
                if !dn.is_empty() {
                    let h = self.tree.node_half(li);
                    let center = self.tree.node_center(li);
                    let de = cube_surface(self.ops.p, center, RAD_OUTER * h);
                    let dns = self.scaled_density(dn, h);
                    for (i, &t) in trgs.iter().enumerate() {
                        let o = &mut out[i * self.td..(i + 1) * self.td];
                        for (j, &s) in de.iter().enumerate() {
                            self.eq_kernel.eval_acc(
                                t,
                                s,
                                &dns[j * self.ops.sdim..(j + 1) * self.ops.sdim],
                                o,
                            );
                        }
                    }
                }

                // M2T: W-list multipoles evaluated directly
                for &w in &node.w_list {
                    let wu = &up_equiv[w as usize];
                    if wu.is_empty() {
                        continue;
                    }
                    let h = self.tree.node_half(w);
                    let center = self.tree.node_center(w);
                    let ue = cube_surface(self.ops.p, center, RAD_INNER * h);
                    let wus = self.scaled_density(wu, h);
                    for (i, &t) in trgs.iter().enumerate() {
                        let o = &mut out[i * self.td..(i + 1) * self.td];
                        for (j, &s) in ue.iter().enumerate() {
                            self.eq_kernel.eval_acc(
                                t,
                                s,
                                &wus[j * self.ops.sdim..(j + 1) * self.ops.sdim],
                                o,
                            );
                        }
                    }
                }
                (li, out)
            })
            .collect();

        // scatter back to the original target order
        let mut out = vec![0.0; self.n_trg * self.td];
        for (li, vals) in chunks {
            let (t0, _) = nodes[li as usize].trg_range;
            for (i, chunk) in vals.chunks(self.td).enumerate() {
                let orig = self.tree.trg_order[t0 as usize + i] as usize;
                out[orig * self.td..(orig + 1) * self.td].copy_from_slice(chunk);
            }
        }
        out
    }
}
