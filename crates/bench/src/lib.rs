//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures (see DESIGN.md's experiment index).

pub mod seed_fmm;

use linalg::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random cloud in `[-1, 1]³` — the shared point sampler of the
/// N-body benches (`benches/components.rs`, `bin/fmm_bench.rs`).
pub fn cloud(rng: &mut StdRng, n: usize) -> Vec<Vec3> {
    use rand::Rng;
    (0..n)
        .map(|_| {
            Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            )
        })
        .collect()
}
use sim::{cells_from_seeds, fill_seeds, SimConfig, Simulation, Vessel};
use sphharm::SphBasis;
use vesicle::CellParams;

/// Builds a confined suspension in a stenosed vessel loop with roughly the
/// requested number of cells (the scaled-down analogue of the paper's
/// vessel networks).
pub fn build_vessel_suspension(
    target_cells: usize,
    refine: u32,
    sph_order: usize,
    seed: u64,
) -> Simulation {
    // fixed cell size; the vessel loop grows with the target count (the
    // scaled-down analogue of the paper's domain refill: constant
    // resolution per cell, domain scaled to the population)
    let small_r = 1.0;
    let h = 0.9;
    let volume_needed = target_cells.max(2) as f64 * h * h * h * 2.2;
    let big_r = (volume_needed
        / (2.0 * std::f64::consts::PI * std::f64::consts::PI * small_r * small_r))
        .max(2.4);
    let nu = ((12.0 * big_r / 4.0) as usize).clamp(8, 48);
    let mut surface = patch::modulated_torus(big_r, small_r, 0.2, 4, nu, 4, 8);
    for _ in 0..refine {
        surface = surface.refined();
    }
    let bie = bie::BieOptions {
        backend: bie::MatvecBackend::Dense,
        gmres: linalg::GmresOptions {
            tol: 1e-4,
            max_iters: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let vessel = Vessel::new(surface.clone(), 1.0, bie, 0.0, 10);
    let basis = SphBasis::new(sph_order);
    let seeds = fill_seeds(&surface, h, 0.9);
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);
    let config = SimConfig {
        dt: 0.01,
        collision_delta: 0.04 * h,
        gravity: Vec3::new(0.0, 0.0, -0.2),
        ..Default::default()
    };
    Simulation::new(basis, cells, Some(vessel), config)
}

/// Warms process-wide caches (FMM operators, upsampling matrices) so that
/// scaling measurements compare steady-state steps, not one-time setup.
pub fn warm_caches() {
    let mut sim = build_vessel_suspension(2, 0, 8, 99);
    sim.step();
}

/// Runs `f` inside a rayon pool with `threads` workers (the substitution
/// for MPI rank counts; see DESIGN.md).
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(f)
}

/// Least-squares slope of log(y) against log(x) (convergence order).
pub fn fitted_order(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.max(1e-300).ln()).collect();
    let sx: f64 = lx.iter().sum();
    let sy: f64 = ly.iter().sum();
    let sxx: f64 = lx.iter().map(|v| v * v).sum();
    let sxy: f64 = lx.iter().zip(&ly).map(|(a, b)| a * b).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
