//! Ablation study for the singular-quadrature design choices of §3.1:
//! sweeps the extrapolation order p, the fine-discretization depth η, and
//! the check-point distance rule, reporting the on-surface operator error
//! (via the constant-density Gauss identity, which the interior limit must
//! map to exactly 1).
//!
//! `cargo run --release -p bench --bin quadrature_ablation`

use bie::{BieOptions, CheckSpec, DoubleLayerSolver, MatvecBackend};
use kernels::{LaplaceDL, LaplaceSL};
use linalg::Vec3;
use patch::cube_sphere;

fn operator_error(opts: BieOptions) -> f64 {
    let surface = cube_sphere(1.0, Vec3::ZERO, 1, 8);
    let solver = DoubleLayerSolver::new(surface, LaplaceDL, LaplaceSL, opts);
    let phi = vec![1.0; solver.dim()];
    let mut out = vec![0.0; solver.dim()];
    solver.apply(&phi, &mut out);
    out.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
}

fn main() {
    println!("# Quadrature ablation (§3.1 parameters; error = max |A·1 − 1|)");
    let base = BieOptions {
        backend: MatvecBackend::Dense,
        null_space: false,
        ..Default::default()
    };

    println!("\n-- extrapolation order p (η = 2, R = r = 0.15 L̂) --");
    println!("{:>4} {:>12}", "p", "op error");
    for p in [2usize, 4, 6, 8, 10] {
        let e = operator_error(BieOptions {
            eta: 2,
            p_extrap: p,
            ..base
        });
        println!("{p:>4} {e:>12.3e}");
    }

    println!("\n-- fine-discretization depth η (p = 8) --");
    println!("{:>4} {:>12}", "eta", "op error");
    for eta in [0u32, 1, 2] {
        let e = operator_error(BieOptions {
            eta,
            p_extrap: 8,
            ..base
        });
        println!("{eta:>4} {e:>12.3e}");
    }

    println!("\n-- check-distance rule (η = 2, p = 8) --");
    println!("{:>22} {:>12}", "rule", "op error");
    for (name, check) in [
        (
            "R=r=0.10 L (weak)",
            CheckSpec::Linear {
                big_r: 0.10,
                small_r: 0.10,
            },
        ),
        (
            "R=r=0.15 L (strong)",
            CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
        ),
        (
            "R=r=0.25 L",
            CheckSpec::Linear {
                big_r: 0.25,
                small_r: 0.25,
            },
        ),
        (
            "R=.04 sqrt(L), r=R/8",
            CheckSpec::Sqrt {
                big_r: 0.04,
                ratio: 0.125,
            },
        ),
    ] {
        let e = operator_error(BieOptions {
            eta: 2,
            p_extrap: 8,
            check,
            ..base
        });
        println!("{name:>22} {e:>12.3e}");
    }
    println!("\nthe paper's production choices (η = 1–2, p = 8, R = r = 0.1–0.15 L̂)");
    println!("sit at the error/cost knee visible above");
}
