//! Boundary-solver convergence (Fig. 9): interior Stokes Dirichlet problem
//! with the exact solution of an exterior Stokeslet, solved on successively
//! refined patched spheres. Reports the maximum relative error of the
//! on-surface velocity at off-node samples against the max patch size L,
//! and the fitted convergence order (the paper observes O(L⁷) with p = 8).
//!
//! `cargo run --release -p bench --bin boundary_convergence`

use bench::fitted_order;
use bie::{BieOptions, CheckSpec, DoubleLayerSolver, MatvecBackend};
use kernels::{stokeslet, StokesDL, StokesEquiv};
use linalg::{GmresOptions, Vec3};
use patch::cube_sphere;

fn main() {
    let x0 = Vec3::new(0.0, 2.2, 1.1);
    let f0 = Vec3::new(1.0, -0.5, 2.0);
    let mut sizes = Vec::new();
    let mut errors = Vec::new();
    println!("# Boundary solver convergence (Fig. 9 analogue)");
    println!(
        "{:>6} {:>10} {:>14} {:>10}",
        "subs", "patches", "max patch L", "max rel err"
    );
    for sub in 0..3u32 {
        let surface = cube_sphere(1.0, Vec3::ZERO, sub, 8);
        let opts = BieOptions {
            eta: 2,
            p_extrap: 8,
            check: CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            backend: MatvecBackend::Dense,
            null_space: true,
            gmres: GmresOptions {
                tol: 1e-7,
                max_iters: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        let solver = DoubleLayerSolver::new(surface, StokesDL, StokesEquiv { mu: 1.0 }, opts);
        let lmax = (0..solver.surface.num_patches())
            .map(|p| solver.quad.patch_size(p))
            .fold(0.0_f64, f64::max);
        let mut g = Vec::with_capacity(solver.dim());
        for &y in &solver.quad.points {
            let u = stokeslet(y, x0, f0, 1.0);
            g.extend_from_slice(&[u.x, u.y, u.z]);
        }
        let (phi, _res) = solver.solve(&g);
        // evaluate at on-surface samples distinct from quadrature nodes
        let mut targets = Vec::new();
        let mut exact = Vec::new();
        for patch in solver.surface.patches.iter().step_by(2) {
            for &(u, v) in &[(0.31, -0.41), (-0.77, 0.23)] {
                let x = patch.eval(u, v);
                targets.push(x);
                exact.push(stokeslet(x, x0, f0, 1.0));
            }
        }
        let uvals = solver.eval_at(&phi, &targets);
        let mut max_rel = 0.0_f64;
        for (i, e) in exact.iter().enumerate() {
            let got = Vec3::new(uvals[i * 3], uvals[i * 3 + 1], uvals[i * 3 + 2]);
            max_rel = max_rel.max((got - *e).norm() / e.norm());
        }
        println!(
            "{:>6} {:>10} {:>14.4} {:>10.3e}",
            sub,
            solver.surface.num_patches(),
            lmax,
            max_rel
        );
        sizes.push(lmax);
        errors.push(max_rel);
    }
    let order = fitted_order(&sizes, &errors);
    println!("\nfitted convergence order: O(L^{order:.2}) (paper: O(L^7) at its parameters)");
    std::fs::create_dir_all("target/bench_out").ok();
    let mut csv = String::from("L,max_rel_err\n");
    for (l, e) in sizes.iter().zip(&errors) {
        csv.push_str(&format!("{l},{e}\n"));
    }
    std::fs::write("target/bench_out/boundary_convergence.csv", csv).unwrap();
}
