//! Weak scaling (Figs. 5/6 and tables): fixed grain per worker; the cell
//! count grows with the worker count (cell size shrinking per the refill
//! rule h → h/∛4 of §5.2) and the vessel patches refine in step. Reports
//! volume fraction, #collision/#RBCs, total time, efficiency, and
//! COL + BIE-solve — the exact rows of the paper's tables.
//!
//! `cargo run --release -p bench --bin weak_scaling [-- --profile skx|knl]`

use bench::{build_vessel_suspension, with_threads};
use sim::StepTimers;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = args
        .iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "skx".to_string());
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    // grain: cells per worker (SKX analogue: larger grain; KNL: smaller
    // grain ⇒ higher synchronization-to-work ratio)
    let grain = if profile == "knl" { 2 } else { 6 };
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut runs = Vec::new();
    let mut t = 1;
    while t <= max_threads {
        runs.push(t);
        t *= 4;
    }

    bench::warm_caches();
    println!(
        "# Weak scaling ({profile} profile, Fig. {} analogue): {grain} cells/worker, {steps} steps",
        if profile == "knl" { 6 } else { 5 }
    );
    println!(
        "{:>8} {:>7} {:>9} {:>11} {:>10} {:>7} | {:>12} {:>7}",
        "cores", "cells", "vol-frac", "#col/#RBC", "total(s)", "eff", "COL+BIEslv", "eff"
    );
    let mut base_total = 0.0;
    let mut base_cb = 0.0;
    let mut csv = String::from(
        "threads,cells,vol_frac,col_ratio,total,col,bie_solve,bie_fmm,other_fmm,other\n",
    );
    let base_cells = grain; // nominal 1-worker population
    for (k, &nt) in runs.iter().enumerate() {
        let cells_target = grain * nt;
        // refine the vessel patches one level per actual 4× cell growth
        // (the generator enforces a minimum domain size, so tiny targets
        // produce the same population and must not trigger refinement)
        let growth = (cells_target as f64 / base_cells as f64).max(1.0);
        let refine = (growth.log(4.0).floor() as u32).min(3);
        let (timers, vf, col_ratio, ncells) = with_threads(nt, || {
            let mut sim = build_vessel_suspension(cells_target, refine, 8, 2);
            let vf = sim.volume_fraction();
            let mut acc = StepTimers::default();
            let mut contacts = 0usize;
            for _ in 0..steps {
                acc.accumulate(&sim.step());
                contacts = contacts.max(sim.last_stats.contacts);
            }
            let ratio = contacts as f64 / sim.cells.len().max(1) as f64;
            (acc, vf, ratio, sim.cells.len())
        });
        let total = timers.total();
        let cb = timers.col_plus_bie_solve();
        if k == 0 {
            base_total = total;
            base_cb = cb;
        }
        // ideal weak scaling: constant time per worker
        let eff = base_total / total;
        let eff_cb = base_cb / cb;
        println!(
            "{:>8} {:>7} {:>8.1}% {:>10.0}% {:>10.2} {:>7.2} | {:>12.2} {:>7.2}",
            nt,
            ncells,
            100.0 * vf,
            100.0 * col_ratio,
            total,
            eff,
            cb,
            eff_cb
        );
        csv.push_str(&format!(
            "{nt},{ncells},{vf},{col_ratio},{total},{},{},{},{},{}\n",
            timers.col, timers.bie_solve, timers.bie_fmm, timers.other_fmm, timers.other
        ));
    }
    std::fs::create_dir_all("target/bench_out").ok();
    std::fs::write(format!("target/bench_out/weak_scaling_{profile}.csv"), csv).unwrap();
    println!("\nwrote target/bench_out/weak_scaling_{profile}.csv");
}
