//! Collision-resolution time-stepping convergence (Fig. 11): two RBCs in
//! shear flow; the error in the final centroid against a fine-Δt reference
//! decays as O(Δt) for two spatial orders, confirming that contact
//! resolution does not degrade the time-stepper's order.
//!
//! `cargo run --release -p bench --bin timestep_convergence`

use bench::fitted_order;
use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

fn run(p: usize, steps: usize, horizon: f64) -> Vec3 {
    let basis = SphBasis::new(p);
    let params = CellParams {
        kappa_b: 0.02,
        k_area: 2.0,
        ..Default::default()
    };
    let cells = vec![
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, 1.0, Vec3::new(-1.3, 0.0, 0.22)),
            params,
        ),
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, 1.0, Vec3::new(1.3, 0.0, -0.22)),
            params,
        ),
    ];
    let config = SimConfig {
        dt: horizon / steps as f64,
        shear_rate: 1.0,
        collision_delta: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, None, config);
    for _ in 0..steps {
        sim.step();
    }
    sim.cells[0].geometry(&sim.basis).centroid()
}

fn main() {
    let horizon = 1.0;
    let ref_steps = 64;
    println!("# Time-step convergence with collision resolution (Fig. 11 analogue)");
    println!("horizon T = {horizon}, reference: T/{ref_steps}");
    std::fs::create_dir_all("target/bench_out").ok();
    let mut csv = String::from("p,steps,err\n");
    for p in [8usize, 12] {
        let reference = run(p, ref_steps, horizon);
        let mut dts = Vec::new();
        let mut errs = Vec::new();
        println!("\nspherical-harmonic order p = {p}");
        println!("{:>8} {:>12} {:>14}", "steps", "dt", "centroid err");
        for steps in [4usize, 8, 16, 32] {
            let c = run(p, steps, horizon);
            let err = (c - reference).norm();
            println!(
                "{:>8} {:>12.4} {:>14.4e}",
                steps,
                horizon / steps as f64,
                err
            );
            dts.push(horizon / steps as f64);
            errs.push(err);
            csv.push_str(&format!("{p},{steps},{err}\n"));
        }
        let order = fitted_order(&dts, &errs);
        println!("fitted temporal order: O(dt^{order:.2}) (paper: O(dt))");
    }
    std::fs::write("target/bench_out/timestep_convergence.csv", csv).unwrap();
}
