//! Physiology-trajectory bench: sweeps the tube-diameter ladder
//! (`vessel_ladder` at fixed flux, one rung per tube radius) and the
//! `bifurcation` branch split, recording the paper's three physiology
//! observables — relative apparent viscosity, cell-free-layer width, and
//! per-branch hematocrit split — into a machine-readable
//! `BENCH_physiology.json`, so the Fåhræus–Lindqvist trajectory is
//! tracked across PRs alongside the perf files.
//!
//! Scenario settings mirror `scenarios/physiology.toml` (sphere cells at
//! smoke resolution — see the TOML's note on the biconcave relaxation
//! transient). The regression *pins* on these observables live in
//! `driver/tests/network.rs`; this bench records the curves themselves,
//! which need longer horizons than a test should spend.
//!
//! Usage: `cargo run --release -p bench --bin physiology [--quick]`
//! (`--quick` runs one rung and one bifurcation step only and writes
//! `BENCH_physiology_quick.json` so smoke runs never clobber the
//! trajectory.)

use driver::{Doc, PhysioRow, PhysioSink, Session, StepSink, Value};
use linalg::Vec3;
use std::fmt::Write as _;

/// One ladder rung (or the bifurcation case): the per-step physiology
/// rows plus the per-step net port flux imbalance from `StepStats`.
struct CaseResult {
    cells: usize,
    dofs: usize,
    rows: Vec<PhysioRow>,
    flux_imbalance: Vec<f64>,
}

/// Steps scenario `name` through a [`PhysioSink`] (junction point enables
/// the branch-split columns) and collects the rows.
fn run_case(name: &str, cfg: &Doc, steps: usize, junction: Option<Vec3>) -> CaseResult {
    let mut session = Session::build(name, cfg).unwrap_or_else(|e| panic!("build {name}: {e}"));
    let mut sink = PhysioSink::new(Vec::new(), junction, 16);
    sink.on_start(&session.sim)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut flux_imbalance = Vec::with_capacity(steps);
    for _ in 0..steps {
        let row = session.step().unwrap_or_else(|e| panic!("{name}: {e}"));
        flux_imbalance.push(row.stats.flux_imbalance);
        sink.on_step(&session.sim, &row)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    CaseResult {
        cells: session.sim.cells.len(),
        dofs: session.sim.dofs(),
        rows: sink.rows,
        flux_imbalance,
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.6e}"))
}

fn opt_list(vals: impl Iterator<Item = Option<f64>>) -> String {
    vals.map(opt).collect::<Vec<_>>().join(", ")
}

fn list(vals: &[f64]) -> String {
    vals.iter()
        .map(|v| format!("{v:.6e}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // scaled-down scenario settings live in scenarios/physiology.toml
    // (compiled in, so the bench and an interactive driver run of the
    // same config file can never drift apart)
    let cfg = Doc::parse(include_str!("../../../../scenarios/physiology.toml"))
        .expect("scenarios/physiology.toml must parse");

    let (radii, ladder_steps, bif_steps): (&[f64], usize, usize) = if quick {
        (&[0.9], 2, 1)
    } else {
        (&[0.7, 0.9, 1.1, 1.3], 4, 2)
    };

    let mut rungs = Vec::new();
    for &radius in radii {
        let mut c = cfg.clone();
        c.set("vessel_ladder", "tube_radius", Value::Float(radius));
        let r = run_case("vessel_ladder", &c, ladder_steps, None);
        let last = r.rows.last().expect("at least one step");
        println!(
            "ladder R={radius:.2}  {} cells {:>6} dofs  μ_app/μ {:?}  CFL {:?}",
            r.cells, r.dofs, last.apparent_viscosity, last.cell_free_layer,
        );
        rungs.push((radius, r));
    }

    let bif = run_case("bifurcation", &cfg, bif_steps, Some(Vec3::ZERO));
    let bif_split = bif.rows.last().and_then(|r| r.split.clone());
    println!(
        "bifurcation  {} cells {:>6} dofs  flux split {:?}  hematocrit split {:?}  max |imbalance| {:.3e}",
        bif.cells,
        bif.dofs,
        bif_split.as_ref().map(|s| s.flux_frac.clone()),
        bif_split.as_ref().map(|s| s.hematocrit_frac.clone()),
        bif.flux_imbalance.iter().cloned().fold(0.0, f64::max),
    );

    // hand-rolled JSON (no serde in the environment); host_cores records
    // the bench box for parity with the other trajectory files
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = format!(
        "{{\n  \"bench\": \"physiology\",\n  \"host_cores\": {host_cores},\n  \"ladder\": [\n"
    );
    for (i, (radius, r)) in rungs.iter().enumerate() {
        let last = r.rows.last().expect("at least one step");
        let _ = writeln!(
            json,
            "    {{\"tube_radius\": {radius}, \"cells\": {}, \"dofs\": {}, \"steps\": {}, \"apparent_viscosity\": {}, \"cell_free_layer\": {}, \"drag_power_per_step\": [{}], \"apparent_viscosity_per_step\": [{}], \"cell_free_layer_per_step\": [{}]}}{}",
            r.cells,
            r.dofs,
            r.rows.len(),
            opt(last.apparent_viscosity),
            opt(last.cell_free_layer),
            opt_list(r.rows.iter().map(|row| row.drag_power)),
            opt_list(r.rows.iter().map(|row| row.apparent_viscosity)),
            opt_list(r.rows.iter().map(|row| row.cell_free_layer)),
            if i + 1 < rungs.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let (hema, flux, assigned, total) = match &bif_split {
        Some(s) => (
            list(&s.hematocrit_frac),
            list(&s.flux_frac),
            s.assigned_cells.to_string(),
            s.total_cells.to_string(),
        ),
        None => (String::new(), String::new(), "null".into(), "null".into()),
    };
    let _ = write!(
        json,
        "  \"bifurcation\": {{\"cells\": {}, \"dofs\": {}, \"steps\": {}, \"flux_split\": [{flux}], \"hematocrit_split\": [{hema}], \"assigned_cells\": {assigned}, \"total_cells\": {total}, \"flux_imbalance_per_step\": [{}]}}\n}}\n",
        bif.cells,
        bif.dofs,
        bif.rows.len(),
        list(&bif.flux_imbalance),
    );
    let path = if quick {
        "BENCH_physiology_quick.json"
    } else {
        "BENCH_physiology.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}
