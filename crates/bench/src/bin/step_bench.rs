//! Full-step perf-trajectory bench: times `sim::Simulation::step` end to
//! end (self-interaction → BIE/GMRES → FMM → collision resolution) for
//! registry scenarios and writes a machine-readable `BENCH_step.json` with
//! the per-stage COL / BIE-solve / BIE-FMM / Other-FMM / Other split, so
//! full-pipeline performance is tracked across PRs alongside the
//! FMM-only `BENCH_fmm.json`.
//!
//! Scenario settings mirror `scenarios/step_bench.toml` (scaled down from
//! the paper's production sizes so the bench finishes in ~a minute). The
//! `bifurcation` row times the branched-network workload (flux-balanced
//! 3-port BCs) next to the straight-tube rows; physiology observables for
//! the network family live in `BENCH_physiology.json` (`--bin physiology`).
//!
//! The two heaviest scenarios (sedimentation, vessel_flow_refined) also
//! record a full-step thread-count curve (1/2/4/8 workers via the
//! `SimConfig::threads` knob) in their `thread_curve` column; the
//! top-level `host_cores` field documents the bench box so a flat curve
//! on a small host isn't read as a scaling regression.
//!
//! Usage: `cargo run --release -p bench --bin step_bench [--quick]`
//! (`--quick` runs fewer steps on the free-space case only and writes
//! `BENCH_step_quick.json` so smoke runs never clobber the trajectory.)

use driver::{Doc, FarmOptions, Manifest, Session};
use sim::StepTimers;
use std::fmt::Write as _;

struct CaseResult {
    name: String,
    cells: usize,
    dofs: usize,
    steps: usize,
    timers: StepTimers,
    /// Boundary-solve GMRES iterations of the untimed warm-up step — the
    /// cold-start count (`None` for free-space scenarios).
    bie_iters_cold: Option<usize>,
    /// Boundary-solve GMRES iterations per measured step (empty for
    /// free-space scenarios). The warm-up step primes the warm start, so
    /// these are *steady-state* (warm) counts; compare against
    /// `bie_iters_cold` for the warm-start win.
    bie_iters: Vec<usize>,
    /// Active contacts at first detection per measured step — the COL
    /// stage's workload scale (its cost is roughly proportional to this
    /// times the NCP outer iterations), recorded so COL perf regressions
    /// can be separated from trajectory changes that shift the contact
    /// count.
    col_contacts: Vec<usize>,
    /// Adaptive-dt rollback/retries per measured step. Nonzero entries
    /// mean the step-health gate tripped and the step re-ran at a reduced
    /// dt — each retry repeats the implicit stage, so retry counts explain
    /// per-step wall-time outliers that are otherwise invisible in the
    /// stage split.
    dt_retries: Vec<usize>,
    /// Worker count the measured steps ran at (the `SimConfig::threads`
    /// knob; 0 = ambient parallelism of the bench host).
    threads: usize,
    /// Full-step thread-count curve, `(workers, total seconds per step)`:
    /// the same warmed instance steps once per entry with
    /// `config.threads` pinned. Trajectories are bit-identical across
    /// thread counts, so consecutive steps time the same pipeline on a
    /// slightly evolving workload. Empty for unswept scenarios.
    thread_curve: Vec<(usize, f64)>,
}

/// Runs `steps` timed steps of registry scenario `name`, reported under
/// `label` (labels diverge from the registry name for config variants,
/// e.g. `vessel_flow_refined`). `curve` lists worker counts to sweep the
/// full step over afterwards (one extra step each, on the same instance).
fn run_case(label: &str, name: &str, cfg: &Doc, steps: usize, curve: &[usize]) -> CaseResult {
    let mut session = Session::build(name, cfg).unwrap_or_else(|e| panic!("build {name}: {e}"));
    let mut timers = StepTimers::default();
    let mut bie_iters = Vec::with_capacity(steps);
    let mut col_contacts = Vec::with_capacity(steps);
    let mut dt_retries = Vec::with_capacity(steps);
    // one untimed warm-up step so process-wide operator caches (upsample
    // matrices, FMM operators) don't pollute the first measured step.
    // NOTE: the warm-up also primes the boundary-solve warm start, so the
    // measured steps reflect steady-state (warm) GMRES iteration counts;
    // its own count is the cold baseline.
    let warm = session.step().unwrap_or_else(|e| panic!("{name}: {e}"));
    let bie_iters_cold = session
        .sim
        .vessel
        .is_some()
        .then_some(warm.stats.bie_iterations);
    for _ in 0..steps {
        let row = session.step().unwrap_or_else(|e| panic!("{name}: {e}"));
        if session.sim.vessel.is_some() {
            bie_iters.push(row.stats.bie_iterations);
        }
        col_contacts.push(row.stats.contacts);
        dt_retries.push(row.stats.dt_retries);
        timers.accumulate(&row.timers);
    }
    let ambient = session.sim.config.threads;
    let mut thread_curve = Vec::with_capacity(curve.len());
    for &nt in curve {
        session.sim.config.threads = nt;
        let row = session.step().unwrap_or_else(|e| panic!("{name}: {e}"));
        thread_curve.push((nt, row.timers.total()));
    }
    session.sim.config.threads = ambient;
    let r = CaseResult {
        name: label.to_string(),
        cells: session.sim.cells.len(),
        dofs: session.sim.dofs(),
        steps,
        timers,
        bie_iters_cold,
        bie_iters,
        col_contacts,
        dt_retries,
        threads: ambient,
        thread_curve,
    };
    let t = &r.timers;
    let n = steps as f64;
    println!(
        "{:<18} {:>3} cells {:>7} dofs  {:>2} steps  per-step: COL {:>7.3}s  BIE-solve {:>7.3}s  BIE-FMM {:>7.3}s  Other-FMM {:>7.3}s  Other {:>7.3}s  total {:>7.3}s  bie_iters cold {} warm {:?}  contacts {:?}",
        r.name, r.cells, r.dofs, r.steps,
        t.col / n, t.bie_solve / n, t.bie_fmm / n, t.other_fmm / n, t.other / n, t.total() / n,
        r.bie_iters_cold.map_or(0, |v| v),
        r.bie_iters,
        r.col_contacts,
    );
    if r.dt_retries.iter().any(|&v| v > 0) {
        println!("{:<18} dt retries per step: {:?}", "", r.dt_retries);
    }
    if !r.thread_curve.is_empty() {
        let pts: Vec<String> = r
            .thread_curve
            .iter()
            .map(|(nt, s)| format!("{nt}t {s:.3}s"))
            .collect();
        println!("{:<18} thread curve per step: {}", "", pts.join("  "));
    }
    r
}

/// Farm-throughput metrics for the `"farm"` row of `BENCH_step.json`.
struct FarmResult {
    jobs: usize,
    completed: usize,
    wall_s: f64,
    cache_hits: u64,
    cache_builds: u64,
}

/// Runs a small two-job farm (free-space pair + refined-wall vessel, the
/// `scenarios/farm_smoke.toml` sizes) through `driver::run_farm` over the
/// worker pool and records throughput plus shared-cache telemetry — the
/// hits-vs-cold-builds split is the farm's headline number: it measures
/// how much immutable state jobs actually share instead of rebuilding.
fn run_farm_case() -> FarmResult {
    let out_root = "target/bench-farm";
    std::fs::remove_dir_all(out_root).ok();
    let text = format!(
        "[farm]\njobs = [\"shear_a\", \"shear_b\", \"vessel_a\", \"vessel_b\"]\n\
         out_root = \"{out_root}\"\n\
         [shear_a]\nscenario = \"shear_pair\"\nsteps = 2\norder = 8\n\
         [shear_b]\nscenario = \"shear_pair\"\nsteps = 2\norder = 8\nshear_rate = 0.5\n\
         [vessel_a]\nscenario = \"vessel_flow\"\nsteps = 2\ntube_segments = 1\n\
         patch_order = 6\norder = 6\nbie_backend = \"fmm\"\nbie_qf = 6\nfill_h = 1.5\n\
         [vessel_b]\nscenario = \"vessel_flow\"\nsteps = 2\ntube_segments = 1\n\
         patch_order = 6\norder = 6\nbie_backend = \"fmm\"\nbie_qf = 6\nfill_h = 1.5\nseed = 7\n"
    );
    let manifest = Manifest::parse(&text).expect("bench farm manifest must parse");
    let report = driver::run_farm(
        &manifest,
        &FarmOptions {
            quiet: true,
            ..Default::default()
        },
    )
    .expect("bench farm must run");
    let r = FarmResult {
        jobs: manifest.jobs.len(),
        completed: report.completed(),
        wall_s: report.wall_s,
        cache_hits: report.cache.hits(),
        cache_builds: report.cache.builds(),
    };
    println!(
        "{:<18} {}/{} jobs in {:.3}s  shared-cache hits {} vs cold builds {}",
        "farm", r.completed, r.jobs, r.wall_s, r.cache_hits, r.cache_builds
    );
    std::fs::remove_dir_all(out_root).ok();
    r
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // the scaled-down scenario settings live in scenarios/step_bench.toml
    // (compiled in, so the bench and an interactive driver run of the same
    // config file can never drift apart)
    let cfg = Doc::parse(include_str!("../../../../scenarios/step_bench.toml"))
        .expect("scenarios/step_bench.toml must parse");

    // the full-step thread sweep (workers pinned via `SimConfig::threads`);
    // recorded per swept scenario so the scaling trajectory lives next to
    // the stage split it explains
    const CURVE: &[usize] = &[1, 2, 4, 8];

    let mut results = Vec::new();
    if quick {
        results.push(run_case("shear_pair", "shear_pair", &cfg, 2, &[]));
    } else {
        results.push(run_case("shear_pair", "shear_pair", &cfg, 5, &[]));
        results.push(run_case("sedimentation", "sedimentation", &cfg, 2, CURVE));
        results.push(run_case(
            "poiseuille_train",
            "poiseuille_train",
            &cfg,
            2,
            &[],
        ));
        // the high-hematocrit stress case: a ~40% volume-fraction rouleau
        // column in a snug tube, stepping under the adaptive-dt controller
        // (its dt_retries_per_step column is the point — retry activity at
        // paper-scale packing is the robustness trajectory this bench pins)
        results.push(run_case(
            "dense_fill_packed",
            "dense_fill_packed",
            &cfg,
            2,
            &[],
        ));
        results.push(run_case("vessel_flow", "vessel_flow", &cfg, 2, &[]));
        // the branched-network workload: a Y-bifurcation with flux-balanced
        // 3-port BCs (the N-port generalization of the tube's 2-port solve)
        // splitting a 2-cell train — tracks the junction blend's cost next
        // to the straight-tube rows
        results.push(run_case("bifurcation", "bifurcation", &cfg, 2, &[]));
        // the resolved-wall variant: 2 refinement levels multiply the
        // patch count 16×, the check spec tightens to the paper's
        // production values, and the Auto backend crosses over to the FMM
        // — the accuracy/cost point of the wall-resolution work (accuracy
        // itself is tracked by `tube_accuracy` and the bie test suite)
        // one measured step (after the shared warm-up): the refined solve
        // is ~an order of magnitude more work per step, and the warm-start
        // iteration shape is already visible from bie_iters_cold vs the
        // single warm count
        let mut refined = cfg.clone();
        refined.set("vessel_flow", "wall_refine", driver::Value::Int(2));
        results.push(run_case(
            "vessel_flow_refined",
            "vessel_flow",
            &refined,
            1,
            CURVE,
        ));
    }

    // hand-rolled JSON (no serde in the environment); host_cores records
    // the bench box's parallelism so flat thread curves measured on a
    // small host aren't mistaken for a scaling regression
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = format!(
        "{{\n  \"bench\": \"simulation_step\",\n  \"host_cores\": {host_cores},\n  \"cases\": [\n"
    );
    for (i, r) in results.iter().enumerate() {
        let t = &r.timers;
        let n = r.steps as f64;
        let iters: Vec<String> = r.bie_iters.iter().map(|v| v.to_string()).collect();
        let contacts: Vec<String> = r.col_contacts.iter().map(|v| v.to_string()).collect();
        let retries: Vec<String> = r.dt_retries.iter().map(|v| v.to_string()).collect();
        let cold = r
            .bie_iters_cold
            .map_or("null".to_string(), |v| v.to_string());
        let curve: Vec<String> = r
            .thread_curve
            .iter()
            .map(|(nt, s)| format!("{{\"threads\": {nt}, \"total_s\": {s:.6}}}"))
            .collect();
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"cells\": {}, \"dofs\": {}, \"steps\": {}, \"threads\": {}, \"bie_iters_cold\": {}, \"bie_iters_per_step\": [{}], \"col_contacts_per_step\": [{}], \"dt_retries_per_step\": [{}], \"thread_curve\": [{}], \"per_step_s\": {{\"col\": {:.6}, \"bie_solve\": {:.6}, \"bie_fmm\": {:.6}, \"other_fmm\": {:.6}, \"other\": {:.6}, \"total\": {:.6}}}}}{}",
            r.name,
            r.cells,
            r.dofs,
            r.steps,
            r.threads,
            cold,
            iters.join(", "),
            contacts.join(", "),
            retries.join(", "),
            curve.join(", "),
            t.col / n,
            t.bie_solve / n,
            t.bie_fmm / n,
            t.other_fmm / n,
            t.other / n,
            t.total() / n,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]");
    if !quick {
        // farm throughput rides in the same trajectory file: jobs
        // completed over the worker pool, wall time, and the shared-cache
        // hit/cold-build split across jobs
        let f = run_farm_case();
        let _ = write!(
            json,
            ",\n  \"farm\": {{\"jobs\": {}, \"completed\": {}, \"wall_s\": {:.3}, \"shared_cache_hits\": {}, \"cold_builds\": {}}}",
            f.jobs, f.completed, f.wall_s, f.cache_hits, f.cache_builds
        );
    }
    json.push_str("\n}\n");
    let path = if quick {
        "BENCH_step_quick.json"
    } else {
        "BENCH_step.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}
