//! Analytic-tube accuracy and backend-crossover study: the measurement
//! behind the vessel wall-resolution work (ROADMAP "vessel boundary
//! resolution" item).
//!
//! Solves the interior Stokes Dirichlet problem on a straight capsule tube
//! at the *registry* scale (radius 1.6, the sedimentation vessel) with the
//! exact solution of an exterior Stokeslet, for `wall_refine` levels
//! 0, 1, 2 with the scenario-default check spec per level, and reports:
//!
//! - the max relative field error at interior targets (the "analytic tube
//!   error" — ~0.7 at level 0, the number that motivated wall refinement);
//! - GMRES iterations and solve time;
//! - per-matvec dense vs FMM timings (the data behind
//!   `bie::MatvecBackend::FMM_CROSSOVER_PATCHES`).
//!
//! `cargo run --release -p bench --bin tube_accuracy [--crossover]`
//! (`--crossover` adds the dense-vs-FMM per-matvec timing sweep, which
//! costs a few extra dense applications at the refined levels.)

use bie::{BieOptions, CheckSpec, DoubleLayerSolver, MatvecBackend};
use kernels::{stokeslet, StokesDL, StokesEquiv};
use linalg::{GmresOptions, Vec3};
use patch::{capsule_tube, BoundarySurface, StraightLine};
use std::time::Instant;

/// Exterior Stokeslet (well outside the tube).
const X0: Vec3 = Vec3 {
    x: 3.0,
    y: 4.0,
    z: 9.0,
};
const F0: Vec3 = Vec3 {
    x: 1.0,
    y: -0.5,
    z: 2.0,
};

/// The sedimentation-registry tube: radius 1.6, axis length 6, 22 patches.
fn tube(refine: u32) -> BoundarySurface {
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(0.0, 0.0, 6.0),
    };
    capsule_tube(&line, 1.6, 3, 8).refine(refine)
}

/// Scenario-default boundary options at a given refinement level (mirrors
/// `driver`'s `bie_options`: check_r 0.06 unrefined / 0.15 refined,
/// qf = q unrefined / q + 4 refined, tol 1e-5 unrefined / 2e-3 refined,
/// p_extrap 5, short restarts with the stall check). The `TUBE_*`
/// environment knobs override single parameters for ad-hoc studies (they
/// are how the defaults were calibrated in the first place).
fn opts(refine: u32, backend: MatvecBackend) -> BieOptions {
    let envf = |k: &str, d: f64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let refined = refine > 0;
    let check_r = envf("TUBE_CHECK_R", if refined { 0.15 } else { 0.06 });
    BieOptions {
        backend,
        eta: envf("TUBE_ETA", 1.0) as u32,
        qf: envf("TUBE_QF", if refined { 12.0 } else { 0.0 }) as usize,
        check: CheckSpec::Linear {
            big_r: check_r,
            small_r: check_r,
        },
        p_extrap: envf("TUBE_P_EXTRAP", 5.0) as usize,
        gmres: GmresOptions {
            tol: envf("TUBE_TOL", if refined { 2e-3 } else { 1e-5 }),
            max_iters: 60,
            restart: 10,
            stall_ratio: envf("TUBE_STALL", 0.9),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Interior targets: on-axis and at 60% radius, away from the caps.
fn targets() -> Vec<Vec3> {
    let mut t = Vec::new();
    for i in 0..5 {
        let z = 1.0 + i as f64;
        t.push(Vec3::new(0.0, 0.0, z));
        t.push(Vec3::new(0.96, 0.0, z));
        t.push(Vec3::new(0.0, -0.96, z));
    }
    t
}

fn max_rel_err(solver: &DoubleLayerSolver<StokesDL, StokesEquiv>, phi: &[f64]) -> f64 {
    let targets = targets();
    let u = solver.eval_at(phi, &targets);
    let mut worst = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let exact = stokeslet(t, X0, F0, 1.0);
        let got = Vec3::new(u[i * 3], u[i * 3 + 1], u[i * 3 + 2]);
        worst = worst.max((got - exact).norm() / exact.norm());
    }
    worst
}

fn main() {
    let crossover = std::env::args().any(|a| a == "--crossover");
    println!("# Analytic tube (radius 1.6, exterior-Stokeslet exact solution)");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>6} {:>9} {:>12}",
        "refine", "patches", "L_max", "backend", "iters", "solve_s", "max_rel_err"
    );
    let max_level: u32 = std::env::var("TUBE_MAX_LEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let min_level: u32 = std::env::var("TUBE_MIN_LEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut rows = Vec::new();
    for refine in min_level..=max_level {
        let surface = tube(refine);
        let solver = DoubleLayerSolver::new(
            surface,
            StokesDL,
            StokesEquiv { mu: 1.0 },
            opts(refine, MatvecBackend::Auto),
        );
        let lmax = (0..solver.surface.num_patches())
            .map(|p| solver.quad.patch_size(p))
            .fold(0.0_f64, f64::max);
        let mut g = Vec::with_capacity(solver.dim());
        for &y in &solver.quad.points {
            let u = stokeslet(y, X0, F0, 1.0);
            g.extend_from_slice(&[u.x, u.y, u.z]);
        }
        let t0 = Instant::now();
        let (phi, res) = solver.solve(&g);
        let t_solve = t0.elapsed().as_secs_f64();
        let err = max_rel_err(&solver, &phi);
        let backend = format!("{:?}", solver.solve_backend()).to_lowercase();
        println!(
            "{:>6} {:>8} {:>8.3} {:>8} {:>6} {:>9.2} {:>12.3e}   (residual {:.1e}{})",
            refine,
            solver.surface.num_patches(),
            lmax,
            backend,
            res.iterations,
            t_solve,
            err,
            res.rel_residual,
            if res.stalled { ", stalled" } else { "" }
        );
        rows.push((refine, solver.surface.num_patches(), err));

        if crossover {
            // one dense and one FMM application of the operator on the same
            // geometry: the per-iteration cost the Auto heuristic trades
            // off. Measured at qf = q so the cost per patch is identical
            // across levels (this is the configuration behind the
            // crossover table in crates/bie/README.md and the constant in
            // bie::MatvecBackend::FMM_CROSSOVER_PATCHES).
            for b in [MatvecBackend::Dense, MatvecBackend::Fmm] {
                let s = DoubleLayerSolver::new(
                    tube(refine),
                    StokesDL,
                    StokesEquiv { mu: 1.0 },
                    BieOptions {
                        qf: 0,
                        ..opts(refine, b)
                    },
                );
                let x = vec![0.5; s.dim()];
                let mut y = vec![0.0; s.dim()];
                s.apply(&x, &mut y); // warm caches / amortized setup
                let t0 = Instant::now();
                s.apply(&x, &mut y);
                println!(
                    "        matvec {:>5}: {:>8.3} s",
                    format!("{b:?}").to_lowercase(),
                    t0.elapsed().as_secs_f64()
                );
            }
        }
    }
    std::fs::create_dir_all("target/bench_out").ok();
    let mut csv = String::from("refine,patches,max_rel_err\n");
    for (r, p, e) in &rows {
        csv.push_str(&format!("{r},{p},{e}\n"));
    }
    std::fs::write("target/bench_out/tube_accuracy.csv", csv).unwrap();
    println!("\nwrote target/bench_out/tube_accuracy.csv");
}
