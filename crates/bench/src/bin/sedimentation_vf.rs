//! High-volume-fraction sedimentation metrics (Fig. 7): cells settling
//! under gravity in a closed capsule; reports the global volume fraction
//! and the local fraction in the lower part of the domain over time
//! (paper: 47% global initial → ~55% local final).
//!
//! `cargo run --release -p bench --bin sedimentation_vf [-- --steps N]`

use linalg::{GmresOptions, Vec3};
use patch::{capsule_tube, StraightLine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{cells_from_seeds, fill_seeds, SimConfig, Simulation, Vessel};
use sphharm::SphBasis;
use vesicle::CellParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);

    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(0.0, 0.0, 5.0),
    };
    let surface = capsule_tube(&line, 1.5, 3, 8);
    let bie = bie::BieOptions {
        backend: bie::MatvecBackend::Dense,
        gmres: GmresOptions {
            tol: 1e-4,
            max_iters: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let vessel = Vessel::new(surface.clone(), 1.0, bie, 0.0, 10);
    let vessel_vol = vessel.volume;

    let basis = SphBasis::new(8);
    let seeds = fill_seeds(&surface, 0.85, 0.97);
    let mut rng = StdRng::seed_from_u64(7);
    let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);
    let config = SimConfig {
        dt: 0.02,
        gravity: Vec3::new(0.0, 0.0, -4.0),
        collision_delta: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, Some(vessel), config);
    println!("# Sedimentation volume fractions (Fig. 7 analogue)");
    println!(
        "{} cells, initial volume fraction {:.1}%",
        sim.cells.len(),
        100.0 * sim.volume_fraction()
    );
    println!(
        "{:>6} {:>10} {:>16} {:>10}",
        "step", "vol-frac", "lower-half frac", "mean z"
    );
    let mut csv = String::from("step,vf,lower_vf,mean_z\n");
    for s in 0..steps {
        sim.step();
        let vf = sim.volume_fraction();
        let mut lower = 0.0;
        let mut mean_z = 0.0;
        for c in &sim.cells {
            let g = c.geometry(&sim.basis);
            mean_z += g.centroid().z;
            if g.centroid().z < 2.5 {
                lower += g.volume();
            }
        }
        mean_z /= sim.cells.len() as f64;
        let lower_vf = lower / (0.5 * vessel_vol);
        println!(
            "{:>6} {:>9.2}% {:>15.2}% {:>10.4}",
            s + 1,
            100.0 * vf,
            100.0 * lower_vf,
            mean_z
        );
        csv.push_str(&format!("{},{vf},{lower_vf},{mean_z}\n", s + 1));
    }
    std::fs::create_dir_all("target/bench_out").ok();
    std::fs::write("target/bench_out/sedimentation_vf.csv", csv).unwrap();
    println!("\nlocal packing should rise above the initial global fraction as cells settle");
}
