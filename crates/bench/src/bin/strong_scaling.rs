//! Strong scaling (Fig. 4 and its table): fixed problem, sweep worker
//! count, report total time, parallel efficiency, and the COL + BIE-solve
//! combination, with the component breakdown per run.
//!
//! `cargo run --release -p bench --bin strong_scaling [-- --cells N --steps S]`

use bench::{build_vessel_suspension, with_threads};
use sim::StepTimers;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let cells = get("--cells", 8);
    let steps = get("--steps", 2);
    let max_threads = get(
        "--max-threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );

    let mut threads = Vec::new();
    let mut t = 1;
    while t <= max_threads {
        threads.push(t);
        t *= 2;
    }

    bench::warm_caches();
    println!("# Strong scaling (Fig. 4 analogue): {cells} target cells, {steps} steps");
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>12} {:>10}",
        "cores",
        "total(s)",
        "eff",
        "COL",
        "BIEslv",
        "BIEfmm",
        "OthFMM",
        "Other",
        "COL+BIEslv",
        "eff"
    );
    let mut base_total = 0.0;
    let mut base_cb = 0.0;
    let mut csv = String::from("threads,total,col,bie_solve,bie_fmm,other_fmm,other\n");
    for (k, &nt) in threads.iter().enumerate() {
        let timers: StepTimers = with_threads(nt, || {
            let mut sim = build_vessel_suspension(cells, 0, 8, 1);
            let mut acc = StepTimers::default();
            for _ in 0..steps {
                acc.accumulate(&sim.step());
            }
            acc
        });
        let total = timers.total();
        let cb = timers.col_plus_bie_solve();
        if k == 0 {
            base_total = total;
            base_cb = cb;
        }
        let eff = base_total / (total * nt as f64 / threads[0] as f64);
        let eff_cb = base_cb / (cb * nt as f64 / threads[0] as f64);
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>12.2} {:>10.2}",
            nt,
            total,
            eff,
            timers.col,
            timers.bie_solve,
            timers.bie_fmm,
            timers.other_fmm,
            timers.other,
            cb,
            eff_cb
        );
        csv.push_str(&format!(
            "{nt},{total},{},{},{},{},{}\n",
            timers.col, timers.bie_solve, timers.bie_fmm, timers.other_fmm, timers.other
        ));
    }
    std::fs::create_dir_all("target/bench_out").ok();
    std::fs::write("target/bench_out/strong_scaling.csv", csv).unwrap();
    println!("\nwrote target/bench_out/strong_scaling.csv");
}
