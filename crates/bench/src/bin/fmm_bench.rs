//! FMM perf-trajectory bench: times `Fmm::new` (setup) and
//! `Fmm::evaluate` for the nbody configurations of
//! `benches/components.rs` (N = 8000, orders 4 and 6, Laplace SL and
//! Stokes SL/DL), next to the seed engine (`bench::seed_fmm::SeedFmm`)
//! ported verbatim from the pre-arena implementation, and writes a
//! machine-readable `BENCH_fmm.json` so the numbers are tracked across
//! PRs.
//!
//! Usage: `cargo run --release -p bench --bin fmm_bench [--quick]`
//! (`--quick` runs one evaluate repetition instead of three and skips
//! order 6 — used by `scripts/check.sh` as a smoke test).

use bench::cloud;
use bench::seed_fmm::SeedFmm;
use fmm::{Fmm, FmmOptions};
use kernels::{Kernel, LaplaceSL, StokesDL, StokesEquiv, StokesSL};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct CaseResult {
    name: String,
    n: usize,
    order: usize,
    setup_s: f64,
    eval_s: f64,
    seed_eval_s: f64,
    speedup: f64,
    rel_diff: f64,
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn run_case<KS: Kernel + Clone, KE: Kernel + Clone>(
    name: &str,
    src_kernel: KS,
    eq_kernel: KE,
    n: usize,
    order: usize,
    reps: usize,
) -> CaseResult {
    let mut rng = StdRng::seed_from_u64(1);
    let pts = cloud(&mut rng, n);
    let data: Vec<f64> = (0..n * src_kernel.src_dim())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let opts = FmmOptions {
        order,
        leaf_capacity: 120,
        max_depth: 10,
    };

    // warm the process-wide operator cache so setup_s measures tree +
    // plan + arenas, not the one-time operator build
    let _ = fmm::cached_operators(&eq_kernel, order);

    let (setup_s, f) = time(1, || {
        Fmm::new(src_kernel.clone(), eq_kernel.clone(), &pts, &pts, opts)
    });
    let (eval_s, new_out) = time(reps, || f.evaluate(&data));

    let seed = SeedFmm::new(src_kernel.clone(), eq_kernel.clone(), &pts, &pts, opts);
    let (seed_eval_s, seed_out) = time(reps, || seed.evaluate(&data));

    let rd = rel_diff(&new_out, &seed_out);
    let r = CaseResult {
        name: name.to_string(),
        n,
        order,
        setup_s,
        eval_s,
        seed_eval_s,
        speedup: seed_eval_s / eval_s,
        rel_diff: rd,
    };
    println!(
        "{:<26} N={:<6} p={}  setup {:>8.1} ms   eval {:>9.2} ms   seed {:>9.2} ms   speedup {:>5.2}x   agree {:.1e}",
        r.name,
        r.n,
        r.order,
        r.setup_s * 1e3,
        r.eval_s * 1e3,
        r.seed_eval_s * 1e3,
        r.speedup,
        r.rel_diff
    );
    r
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let n = 8000;
    let orders: &[usize] = if quick { &[4] } else { &[4, 6] };

    let mut results = Vec::new();
    for &order in orders {
        results.push(run_case("laplace_sl", LaplaceSL, LaplaceSL, n, order, reps));
        results.push(run_case(
            "stokes_sl",
            StokesSL { mu: 1.0 },
            StokesSL { mu: 1.0 },
            n,
            order,
            reps,
        ));
        if !quick {
            results.push(run_case(
                "stokes_dl",
                StokesDL,
                StokesEquiv { mu: 1.0 },
                n,
                order,
                reps,
            ));
        }
    }

    // hand-rolled JSON (no serde in the environment)
    let mut json = String::from("{\n  \"bench\": \"fmm_evaluate\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"order\": {}, \"setup_s\": {:.6}, \"eval_s\": {:.6}, \"seed_eval_s\": {:.6}, \"speedup\": {:.3}, \"rel_diff_vs_seed\": {:.3e}}}{}\n",
            r.name,
            r.n,
            r.order,
            r.setup_s,
            r.eval_s,
            r.seed_eval_s,
            r.speedup,
            r.rel_diff,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    // quick (smoke) runs must not clobber the tracked perf trajectory
    let path = if quick {
        "BENCH_fmm_quick.json"
    } else {
        "BENCH_fmm.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");

    let worst = results
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("worst-case speedup vs seed engine: {worst:.2}x");
    let worst_agree = results.iter().map(|r| r.rel_diff).fold(0.0, f64::max);
    // The two engines sum in different orders (GEMM blocks vs per-
    // interaction matvecs), so they agree to roundoff amplified by the
    // pseudo-inverse conditioning, not to machine epsilon.
    assert!(
        worst_agree < 1e-8,
        "new engine disagrees with seed engine: {worst_agree:.3e}"
    );
}
