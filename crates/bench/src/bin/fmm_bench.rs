//! FMM perf-trajectory bench: times `Fmm::new` (setup) and
//! `Fmm::evaluate` for the nbody configurations of
//! `benches/components.rs` (N = 8000, orders 4 and 6, Laplace SL and
//! Stokes SL/DL), next to the seed engine (`bench::seed_fmm::SeedFmm`)
//! ported verbatim from the pre-arena implementation, and writes a
//! machine-readable `BENCH_fmm.json` so the numbers are tracked across
//! PRs.
//!
//! A second section times the *persistent-plan* path the wall FMM runs on
//! (`Fmm::frozen` + `evaluate_at`): stresslet sources on a tube surface,
//! moving targets in the lumen — one frozen-tree build, then a target-only
//! replan + evaluate per call, against the fresh build-per-call cost it
//! replaced, with a `leaf_capacity` sweep at the production order 4.
//!
//! Usage: `cargo run --release -p bench --bin fmm_bench [--quick]`
//! (`--quick` runs one evaluate repetition instead of three, skips
//! order 6, and runs a single replan row — used by `scripts/check.sh`
//! as a smoke test).

use bench::cloud;
use bench::seed_fmm::SeedFmm;
use fmm::{Fmm, FmmOptions};
use kernels::{Kernel, LaplaceSL, StokesDL, StokesEquiv, StokesSL};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct CaseResult {
    name: String,
    n: usize,
    order: usize,
    setup_s: f64,
    eval_s: f64,
    seed_eval_s: f64,
    speedup: f64,
    rel_diff: f64,
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn run_case<KS: Kernel + Clone, KE: Kernel + Clone>(
    name: &str,
    src_kernel: KS,
    eq_kernel: KE,
    n: usize,
    order: usize,
    reps: usize,
) -> CaseResult {
    let mut rng = StdRng::seed_from_u64(1);
    let pts = cloud(&mut rng, n);
    let data: Vec<f64> = (0..n * src_kernel.src_dim())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let opts = FmmOptions {
        order,
        leaf_capacity: 120,
        max_depth: 10,
    };

    // warm the process-wide operator cache so setup_s measures tree +
    // plan + arenas, not the one-time operator build
    let _ = fmm::cached_operators(&eq_kernel, order);

    let (setup_s, f) = time(1, || {
        Fmm::new(src_kernel.clone(), eq_kernel.clone(), &pts, &pts, opts)
    });
    let (eval_s, new_out) = time(reps, || f.evaluate(&data));

    let seed = SeedFmm::new(src_kernel.clone(), eq_kernel.clone(), &pts, &pts, opts);
    let (seed_eval_s, seed_out) = time(reps, || seed.evaluate(&data));

    let rd = rel_diff(&new_out, &seed_out);
    let r = CaseResult {
        name: name.to_string(),
        n,
        order,
        setup_s,
        eval_s,
        seed_eval_s,
        speedup: seed_eval_s / eval_s,
        rel_diff: rd,
    };
    println!(
        "{:<26} N={:<6} p={}  setup {:>8.1} ms   eval {:>9.2} ms   seed {:>9.2} ms   speedup {:>5.2}x   agree {:.1e}",
        r.name,
        r.n,
        r.order,
        r.setup_s * 1e3,
        r.eval_s * 1e3,
        r.seed_eval_s * 1e3,
        r.speedup,
        r.rel_diff
    );
    r
}

struct ReplanResult {
    n_src: usize,
    n_trg: usize,
    order: usize,
    leaf_capacity: usize,
    /// One-time frozen source-tree build (no targets).
    frozen_build_s: f64,
    /// Per-call cost on the persistent plan: target replan + evaluate.
    replan_eval_s: f64,
    /// The cost this replaced: fresh frozen build + evaluate per call.
    fresh_eval_s: f64,
    speedup: f64,
    /// Max abs difference of the replanned result vs the fresh build's —
    /// identical tree + plan, so this must sit at roundoff (≤ 1e-12).
    agree: f64,
}

/// Wall-FMM microbench: stresslet sources frozen on a tube surface,
/// per-call target replans for drifting lumen targets (the geometry of
/// `bie::DoubleLayerSolver::eval_at` inside a vessel step).
fn run_replan_case(
    n_src: usize,
    n_trg: usize,
    order: usize,
    leaf_capacity: usize,
    reps: usize,
) -> ReplanResult {
    let mut rng = StdRng::seed_from_u64(2);
    let (r, len) = (1.0, 4.0);
    let src: Vec<linalg::Vec3> = (0..n_src)
        .map(|_| {
            let th = rng.random_range(0.0..std::f64::consts::TAU);
            let z = rng.random_range(-0.5 * len..0.5 * len);
            linalg::Vec3::new(r * th.cos(), r * th.sin(), z)
        })
        .collect();
    let lumen = |rng: &mut StdRng, n: usize| -> Vec<linalg::Vec3> {
        (0..n)
            .map(|_| {
                let th = rng.random_range(0.0..std::f64::consts::TAU);
                let rr = r * rng.random_range(0.0..0.85f64).sqrt();
                let z = rng.random_range(-0.45 * len..0.45 * len);
                linalg::Vec3::new(rr * th.cos(), rr * th.sin(), z)
            })
            .collect()
    };
    let sk = StokesDL;
    let ek = StokesEquiv { mu: 1.0 };
    let data: Vec<f64> = (0..n_src * sk.src_dim())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let opts = FmmOptions {
        order,
        leaf_capacity,
        max_depth: 14,
    };
    let _ = fmm::cached_operators(&ek, order);

    let (frozen_build_s, mut f) = time(1, || Fmm::frozen(sk, ek, &src, &[], opts));
    // two target sets, alternated so every timed call replans
    let trg_a = lumen(&mut rng, n_trg);
    let trg_b = lumen(&mut rng, n_trg);
    // prime the persistent arenas, then time replan + evaluate
    let _ = f.evaluate_at(&data, &trg_b);
    let mut flip = false;
    let (replan_eval_s, _) = time(reps.max(2), || {
        flip = !flip;
        f.evaluate_at(&data, if flip { &trg_a } else { &trg_b })
    });
    // the cost this replaced: a throwaway frozen build + evaluate per call
    let (fresh_eval_s, fresh) = time(reps, || {
        let g = Fmm::frozen(sk, ek, &src, &trg_b, opts);
        g.evaluate(&data)
    });
    let replanned = f.evaluate_at(&data, &trg_b);
    let agree = replanned
        .iter()
        .zip(&fresh)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let res = ReplanResult {
        n_src,
        n_trg,
        order,
        leaf_capacity,
        frozen_build_s,
        replan_eval_s,
        fresh_eval_s,
        speedup: fresh_eval_s / replan_eval_s,
        agree,
    };
    println!(
        "replan stokes_dl           Nsrc={:<6} Ntrg={:<5} p={} leaf={:<4} build {:>8.1} ms   replan+eval {:>8.2} ms   fresh {:>9.2} ms   speedup {:>5.2}x   agree {:.1e}",
        res.n_src,
        res.n_trg,
        res.order,
        res.leaf_capacity,
        res.frozen_build_s * 1e3,
        res.replan_eval_s * 1e3,
        res.fresh_eval_s * 1e3,
        res.speedup,
        res.agree
    );
    res
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let n = 8000;
    let orders: &[usize] = if quick { &[4] } else { &[4, 6] };

    let mut results = Vec::new();
    for &order in orders {
        results.push(run_case("laplace_sl", LaplaceSL, LaplaceSL, n, order, reps));
        results.push(run_case(
            "stokes_sl",
            StokesSL { mu: 1.0 },
            StokesSL { mu: 1.0 },
            n,
            order,
            reps,
        ));
        if !quick {
            results.push(run_case(
                "stokes_dl",
                StokesDL,
                StokesEquiv { mu: 1.0 },
                n,
                order,
                reps,
            ));
        }
    }

    // persistent-plan section: one frozen build, target-only replans, at
    // the production wall configuration (stresslet kernel, order 4).
    // The full run sweeps leaf_capacity around the library default to
    // keep the chosen default honest against the replan workload.
    let mut replans = Vec::new();
    if quick {
        replans.push(run_replan_case(8000, 1500, 4, 120, 1));
    } else {
        for leaf in [60, 120, 240] {
            replans.push(run_replan_case(20000, 3000, 4, leaf, reps));
        }
        replans.push(run_replan_case(20000, 3000, 6, 120, reps));
    }

    // hand-rolled JSON (no serde in the environment)
    let mut json = String::from("{\n  \"bench\": \"fmm_evaluate\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"order\": {}, \"setup_s\": {:.6}, \"eval_s\": {:.6}, \"seed_eval_s\": {:.6}, \"speedup\": {:.3}, \"rel_diff_vs_seed\": {:.3e}}}{}",
            r.name,
            r.n,
            r.order,
            r.setup_s,
            r.eval_s,
            r.seed_eval_s,
            r.speedup,
            r.rel_diff,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"target_replan\": [\n");
    for (i, r) in replans.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"stokes_dl\", \"n_src\": {}, \"n_trg\": {}, \"order\": {}, \"leaf_capacity\": {}, \"frozen_build_s\": {:.6}, \"replan_eval_s\": {:.6}, \"fresh_eval_s\": {:.6}, \"speedup\": {:.3}, \"max_abs_diff_vs_fresh\": {:.3e}}}{}",
            r.n_src,
            r.n_trg,
            r.order,
            r.leaf_capacity,
            r.frozen_build_s,
            r.replan_eval_s,
            r.fresh_eval_s,
            r.speedup,
            r.agree,
            if i + 1 < replans.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    // quick (smoke) runs must not clobber the tracked perf trajectory
    let path = if quick {
        "BENCH_fmm_quick.json"
    } else {
        "BENCH_fmm.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");

    let worst = results
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("worst-case speedup vs seed engine: {worst:.2}x");
    let worst_agree = results.iter().map(|r| r.rel_diff).fold(0.0, f64::max);
    // The two engines sum in different orders (GEMM blocks vs per-
    // interaction matvecs), so they agree to roundoff amplified by the
    // pseudo-inverse conditioning, not to machine epsilon.
    assert!(
        worst_agree < 1e-8,
        "new engine disagrees with seed engine: {worst_agree:.3e}"
    );
    // a replanned persistent plan runs the identical tree + operators as a
    // fresh frozen build — disagreement above roundoff means target-side
    // state leaked between replans
    let worst_replan = replans.iter().map(|r| r.agree).fold(0.0, f64::max);
    assert!(
        worst_replan <= 1e-12,
        "replanned persistent FMM disagrees with fresh build: {worst_replan:.3e}"
    );
}
