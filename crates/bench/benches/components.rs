//! Criterion micro-benchmarks backing the component bars of Figs. 4–6:
//! FMM vs. direct N-body, candidate-pair detection, closest-point search,
//! LCP solves, the self-interaction operator, and spherical-harmonic
//! transforms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::{direct_eval, LaplaceSL, StokesSL};
use linalg::Vec3;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

use bench::cloud;

fn bench_fmm_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbody_laplace");
    group.sample_size(10);
    for &n in &[2000usize, 8000] {
        let mut rng = StdRng::seed_from_u64(1);
        let src = cloud(&mut rng, n);
        let data: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = LaplaceSL;
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| {
                let mut out = vec![0.0; n];
                direct_eval(&k, &src, &data, &src, &mut out);
                black_box(out)
            })
        });
        for &order in &[4usize, 6] {
            group.bench_with_input(
                BenchmarkId::new(format!("fmm_order{order}"), n),
                &n,
                |b, _| {
                    let f = fmm::Fmm::new(
                        k,
                        k,
                        &src,
                        &src,
                        fmm::FmmOptions {
                            order,
                            leaf_capacity: 120,
                            max_depth: 10,
                        },
                    );
                    b.iter(|| black_box(f.evaluate(&data)))
                },
            );
        }
    }
    group.finish();
}

fn bench_fmm_stokes(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbody_stokes");
    group.sample_size(10);
    let n = 8000usize;
    let mut rng = StdRng::seed_from_u64(1);
    let src = cloud(&mut rng, n);
    let data: Vec<f64> = (0..3 * n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let k = StokesSL { mu: 1.0 };
    for &order in &[4usize, 6] {
        group.bench_with_input(
            BenchmarkId::new(format!("fmm_order{order}"), n),
            &n,
            |b, _| {
                let f = fmm::Fmm::new(
                    k,
                    k,
                    &src,
                    &src,
                    fmm::FmmOptions {
                        order,
                        leaf_capacity: 120,
                        max_depth: 10,
                    },
                );
                b.iter(|| black_box(f.evaluate(&data)))
            },
        );
    }
    group.finish();
}

/// The M2L inner kernel in both formulations: per-interaction dense
/// matvecs with an offset-map lookup (the seed formulation) vs one
/// gathered GEMM per translation class (the batched formulation). Uses the
/// real precomputed operators at order 6.
fn bench_m2l(c: &mut Criterion) {
    let mut group = c.benchmark_group("m2l");
    group.sample_size(20);
    let ops = fmm::cached_operators(&LaplaceSL, 6);
    let nd = ops.n_surf; // Laplace: sdim = vdim = 1
    let class = fmm::ops::m2l_class(2, 1, -1).unwrap();
    let op_t = ops.m2l_t[class].as_ref().unwrap();
    let op = op_t.transpose();
    let batch = 64usize;
    let mut rng = StdRng::seed_from_u64(3);
    // gathered source-density block (the arena rows the FMM would gather)
    let equiv: Vec<f64> = (0..batch * nd)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let mut lookup = std::collections::HashMap::new();
    lookup.insert((2i8, 1i8, -1i8), op);
    group.bench_function("per_interaction_64", |b| {
        b.iter(|| {
            let mut check = vec![0.0; batch * nd];
            let m = lookup.get(&(2i8, 1i8, -1i8)).unwrap();
            for i in 0..batch {
                m.matvec_acc(
                    &equiv[i * nd..(i + 1) * nd],
                    1.25,
                    &mut check[i * nd..(i + 1) * nd],
                );
            }
            black_box(check)
        })
    });
    group.bench_function("batched_gemm_64", |b| {
        b.iter(|| {
            let mut check = vec![0.0; batch * nd];
            linalg::gemm_acc(batch, nd, nd, 1.25, &equiv, op_t.data(), &mut check);
            black_box(check)
        })
    });
    group.finish();
}

/// The batched kernel micro-path: scalar `eval_acc` loops vs the
/// vectorized `eval_block` implementations, per kernel.
fn bench_eval_block(c: &mut Criterion) {
    use kernels::Kernel;
    let mut group = c.benchmark_group("eval_block");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    let srcs = cloud(&mut rng, 2000);
    let trgs = cloud(&mut rng, 64);

    fn scalar_loop<K: Kernel>(k: &K, trgs: &[Vec3], srcs: &[Vec3], data: &[f64]) -> Vec<f64> {
        let (sd, td) = (k.src_dim(), k.trg_dim());
        let mut out = vec![0.0; trgs.len() * td];
        for (i, &t) in trgs.iter().enumerate() {
            let o = &mut out[i * td..(i + 1) * td];
            for (j, &s) in srcs.iter().enumerate() {
                k.eval_acc(t, s, &data[j * sd..(j + 1) * sd], o);
            }
        }
        out
    }

    macro_rules! bench_kernel {
        ($name:literal, $k:expr) => {{
            let k = $k;
            let data: Vec<f64> = (0..srcs.len() * k.src_dim())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            group.bench_function(concat!($name, "_scalar"), |b| {
                b.iter(|| black_box(scalar_loop(&k, &trgs, &srcs, &data)))
            });
            group.bench_function(concat!($name, "_block"), |b| {
                b.iter(|| {
                    let mut out = vec![0.0; trgs.len() * k.trg_dim()];
                    k.eval_block(&trgs, &srcs, &data, &mut out);
                    black_box(out)
                })
            });
        }};
    }
    bench_kernel!("laplace_sl", LaplaceSL);
    bench_kernel!("stokes_sl", StokesSL { mu: 1.0 });
    bench_kernel!("stokes_dl", kernels::StokesDL);
    group.finish();
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("collision_candidates");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let boxes: Vec<linalg::Aabb> = (0..4000)
        .map(|_| {
            let c = Vec3::new(
                rng.random_range(-5.0..5.0),
                rng.random_range(-5.0..5.0),
                rng.random_range(-5.0..5.0),
            );
            linalg::Aabb::new(c - Vec3::splat(0.15), c + Vec3::splat(0.15))
        })
        .collect();
    let grid = octree::SpatialHash::new(octree::mean_diagonal_spacing(&boxes), Vec3::ZERO);
    group.bench_function("self_pairs_4000", |b| {
        b.iter(|| black_box(octree::box_box_candidates_self(&boxes, &grid)))
    });
    group.finish();
}

fn bench_lcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcp");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    let m = 60;
    let mut bmat = linalg::Mat::from_fn(m, m, |_, _| rng.random_range(-0.3..0.3));
    for i in 0..m {
        bmat[(i, i)] = m as f64;
    }
    let q: Vec<f64> = (0..m).map(|_| rng.random_range(-2.0..2.0)).collect();
    group.bench_function("minimum_map_newton_60", |b| {
        b.iter(|| {
            black_box(collision::solve_lcp(
                m,
                |x, y| bmat.matvec_into(x, y),
                &q,
                &collision::LcpOptions::default(),
            ))
        })
    });
    group.finish();
}

fn bench_selfop(c: &mut Criterion) {
    let mut group = c.benchmark_group("selfop");
    group.sample_size(10);
    let basis = sphharm::SphBasis::new(12);
    let coeffs = vesicle::sphere_coeffs(&basis, 1.0, Vec3::ZERO);
    group.bench_function("build_p12", |b| {
        b.iter(|| {
            black_box(vesicle::SelfInteraction::build(
                &basis,
                &coeffs,
                1.0,
                vesicle::SelfOpOptions::default(),
            ))
        })
    });
    let op =
        vesicle::SelfInteraction::build(&basis, &coeffs, 1.0, vesicle::SelfOpOptions::default());
    let f: Vec<f64> = (0..3 * basis.grid_size())
        .map(|i| (i as f64 * 0.1).sin())
        .collect();
    group.bench_function("apply_p12", |b| b.iter(|| black_box(op.apply(&f))));
    group.finish();
}

fn bench_sph_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("sphharm");
    let basis = sphharm::SphBasis::new(16);
    let mut rng = StdRng::seed_from_u64(4);
    let grid: Vec<f64> = (0..basis.grid_size())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    group.bench_function("analyze_p16", |b| {
        b.iter(|| black_box(basis.analyze(&grid)))
    });
    let cf = basis.analyze(&grid);
    group.bench_function("synthesize_p16", |b| {
        b.iter(|| black_box(basis.synthesize(&cf, sphharm::Deriv::None)))
    });
    group.finish();
}

fn bench_stokes_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("stokes_p2p");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let n = 4000;
    let src = cloud(&mut rng, n);
    let data: Vec<f64> = (0..3 * n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let k = StokesSL { mu: 1.0 };
    group.bench_function("stokeslet_4000x4000", |b| {
        b.iter(|| {
            let mut out = vec![0.0; 3 * n];
            direct_eval(&k, &src, &data, &src, &mut out);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fmm_vs_direct,
    bench_fmm_stokes,
    bench_m2l,
    bench_eval_block,
    bench_candidates,
    bench_lcp,
    bench_selfop,
    bench_sph_transforms,
    bench_stokes_direct
);
criterion_main!(benches);
