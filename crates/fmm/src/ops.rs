//! Precomputed translation operators for the kernel-independent FMM.
//!
//! All operators are built once per (equivalent kernel, surface order) pair
//! at *unit scale* (box half-width 1) and rescaled across levels using the
//! kernel's homogeneity degree, exactly as PVFMM does for scale-invariant
//! kernels. A process-wide cache keeps them across FMM instances — the
//! octree changes every time step of a simulation, the operators never do.
//!
//! Contents:
//! - `uc2ue`: pseudo-inverse mapping upward-check values to upward
//!   equivalent densities (regularized SVD, the ill-conditioned first-kind
//!   solve at the heart of KIFMM);
//! - `dc2de`: the downward counterpart;
//! - `m2m[o]`/`l2l[o]`: per-octant composed translation matrices
//!   (scale-invariant, so one set serves all levels);
//! - `m2l[(dx,dy,dz)]`: dense check-value translation matrices for the 316
//!   well-separated same-level offsets.

use crate::surface::{cube_surface, RAD_INNER, RAD_OUTER};
use kernels::Kernel;
use linalg::{Mat, Svd, Vec3};
use parking_lot::Mutex;
use rayon::par;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Relative SVD truncation for the equivalent-density pseudo-inverses.
pub const PINV_TOL: f64 = 1e-10;

/// Number of M2L translation-offset classes: all `(dx,dy,dz)` with
/// components in `[-3, 3]`, indexed densely (316 of the 343 slots are
/// valid V-list offsets; the 27 near-field slots stay empty).
pub const M2L_CLASSES: usize = 343;

/// Dense index of an M2L translation offset. Returns `None` for offsets
/// outside the `[-3, 3]` cube (cannot occur for a valid V list).
#[inline]
pub fn m2l_class(dx: i8, dy: i8, dz: i8) -> Option<usize> {
    if dx.abs() > 3 || dy.abs() > 3 || dz.abs() > 3 {
        return None;
    }
    Some((((dx + 3) as usize * 7) + (dy + 3) as usize) * 7 + (dz + 3) as usize)
}

/// The full operator set at unit scale. See the module docs.
pub struct FmmOperators {
    /// Surface order (points per cube edge).
    pub p: usize,
    /// Density components per equivalent-surface point (4 for the
    /// augmented Stokes kernel, 3 plain Stokes, 1 Laplace).
    pub sdim: usize,
    /// Value components per check-surface point (3 Stokes, 1 Laplace).
    pub vdim: usize,
    /// Points on each auxiliary surface.
    pub n_surf: usize,
    /// Homogeneity degree of the equivalent kernel.
    pub deg: f64,
    /// Upward check values → upward equivalent density (unit scale).
    pub uc2ue: Mat,
    /// Downward check values → downward equivalent density (unit scale).
    pub dc2de: Mat,
    /// Composed child-equivalent → parent-equivalent, per child octant.
    pub m2m: Vec<Mat>,
    /// Composed parent-equivalent → child-equivalent, per child octant.
    pub l2l: Vec<Mat>,
    /// **Transposed** source-equivalent → target-check translation
    /// operators, indexed by [`m2l_class`]. Stored transposed
    /// (`nd_eq × nd_chk`) so the batched level-wise M2L pass can gather a
    /// block of source densities as rows and dispatch one row-major GEMM
    /// per class: `Check_rowsᵀ += Equiv_rowsᵀ · Kᵀ`.
    pub m2l_t: Vec<Option<Mat>>,
    /// Per-component storage-scale exponents of the equivalent kernel.
    pub scale_exps: Vec<i32>,
}

/// Dense kernel interaction matrix: maps the stacked source data (source
/// major, `src_dim` each) to stacked target values (`trg_dim` each).
pub fn kernel_matrix<K: Kernel>(kernel: &K, srcs: &[Vec3], trgs: &[Vec3]) -> Mat {
    let sd = kernel.src_dim();
    let td = kernel.trg_dim();
    let mut m = Mat::zeros(trgs.len() * td, srcs.len() * sd);
    let mut unit = vec![0.0; sd];
    let mut out = vec![0.0; td];
    for (j, &s) in srcs.iter().enumerate() {
        for b in 0..sd {
            unit.iter_mut().for_each(|v| *v = 0.0);
            unit[b] = 1.0;
            for (i, &t) in trgs.iter().enumerate() {
                out.iter_mut().for_each(|v| *v = 0.0);
                kernel.eval_acc(t, s, &unit, &mut out);
                for (a, &val) in out.iter().enumerate() {
                    m[(i * td + a, j * sd + b)] = val;
                }
            }
        }
    }
    m
}

/// Kernel matrix for a density living on a surface of half-width `h_src`:
/// columns are scaled by `h_src^{e_j}` per the kernel's
/// [`Kernel::src_scale_exponents`] storage convention.
pub fn kernel_matrix_scaled<K: Kernel>(
    kernel: &K,
    srcs: &[Vec3],
    trgs: &[Vec3],
    h_src: f64,
) -> Mat {
    let mut m = kernel_matrix(kernel, srcs, trgs);
    let exps = kernel.src_scale_exponents();
    if exps.iter().any(|&e| e != 0) {
        let sd = kernel.src_dim();
        for i in 0..m.rows() {
            let row = m.row_mut(i);
            for (j, val) in row.iter_mut().enumerate() {
                let e = exps[j % sd];
                if e != 0 {
                    *val *= h_src.powi(e);
                }
            }
        }
    }
    m
}

fn child_center(octant: usize) -> Vec3 {
    Vec3::new(
        if octant & 1 == 0 { -0.5 } else { 0.5 },
        if octant & 2 == 0 { -0.5 } else { 0.5 },
        if octant & 4 == 0 { -0.5 } else { 0.5 },
    )
}

impl FmmOperators {
    /// Builds the operator set with the default truncation [`PINV_TOL`].
    pub fn build<K: Kernel>(eq_kernel: &K, p: usize) -> FmmOperators {
        Self::build_with_tol(eq_kernel, p, PINV_TOL)
    }

    /// Builds the operator set for the given equivalent kernel and order,
    /// with an explicit relative SVD truncation for the pseudo-inverses.
    pub fn build_with_tol<K: Kernel>(eq_kernel: &K, p: usize, tol: f64) -> FmmOperators {
        let sdim = eq_kernel.src_dim();
        let vdim = eq_kernel.trg_dim();
        let deg = eq_kernel.scale_invariance();

        let ue = cube_surface(p, Vec3::ZERO, RAD_INNER);
        let uc = cube_surface(p, Vec3::ZERO, RAD_OUTER);
        let n_surf = ue.len();

        // pseudo-inverses at unit scale
        let k_ue2uc = kernel_matrix(eq_kernel, &ue, &uc);
        let uc2ue = Svd::new(&k_ue2uc).pseudo_inverse(tol);
        // downward: equivalent on the outer surface, check on the inner
        let de = cube_surface(p, Vec3::ZERO, RAD_OUTER);
        let dc = cube_surface(p, Vec3::ZERO, RAD_INNER);
        let k_de2dc = kernel_matrix(eq_kernel, &de, &dc);
        let dc2de = Svd::new(&k_de2dc).pseudo_inverse(tol);

        // composed M2M / L2L per octant; both are invariant under global
        // rescaling (kernel factor s^deg in K cancels s^{-deg} in the
        // pseudo-inverse), so one set serves every level.
        let child_scale = 0.5_f64;
        let m2m: Vec<Mat> = par::map_indexed(8, |o| {
            let cc = child_center(o);
            let ceq = cube_surface(p, cc, RAD_INNER * child_scale);
            let k = kernel_matrix_scaled(eq_kernel, &ceq, &uc, child_scale);
            uc2ue.matmul(&k)
        });
        let l2l: Vec<Mat> = par::map_indexed(8, |o| {
            let cc = child_center(o);
            let cchk = cube_surface(p, cc, RAD_INNER * child_scale);
            let k = kernel_matrix(eq_kernel, &de, &cchk);
            // compose with the child's own pseudo-inverse at half scale
            let cde = cube_surface(p, cc, RAD_OUTER * child_scale);
            let k_cde2cdc = kernel_matrix_scaled(eq_kernel, &cde, &cchk, child_scale);
            Svd::new(&k_cde2cdc).pseudo_inverse(tol).matmul(&k)
        });

        // M2L offsets: same-level boxes with center offsets 2·(dx,dy,dz),
        // non-adjacent (max |d| ≥ 2), |d| ≤ 3. Stored transposed, densely
        // indexed by class (see `m2l_class`).
        let mut offsets = Vec::new();
        for dz in -3i8..=3 {
            for dy in -3i8..=3 {
                for dx in -3i8..=3 {
                    if dx.abs().max(dy.abs()).max(dz.abs()) >= 2 {
                        offsets.push((dx, dy, dz));
                    }
                }
            }
        }
        let mats: Vec<Mat> = par::map_indexed(offsets.len(), |i| {
            let (dx, dy, dz) = offsets[i];
            let src_center = Vec3::new(2.0 * dx as f64, 2.0 * dy as f64, 2.0 * dz as f64);
            let seq = cube_surface(p, src_center, RAD_INNER);
            kernel_matrix(eq_kernel, &seq, &dc).transpose()
        });
        let mut m2l_t: Vec<Option<Mat>> = (0..M2L_CLASSES).map(|_| None).collect();
        for ((dx, dy, dz), mat) in offsets.into_iter().zip(mats) {
            m2l_t[m2l_class(dx, dy, dz).unwrap()] = Some(mat);
        }

        FmmOperators {
            p,
            sdim,
            vdim,
            n_surf,
            deg,
            uc2ue,
            dc2de,
            m2m,
            l2l,
            m2l_t,
            scale_exps: eq_kernel.src_scale_exponents(),
        }
    }
}

type CacheKey = (&'static str, u64, usize);
static OPS_CACHE: Mutex<Option<HashMap<CacheKey, Arc<FmmOperators>>>> = Mutex::new(None);
static OPS_BUILDS: AtomicU64 = AtomicU64::new(0);
static OPS_HITS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide operator-cache counters (monotone since process
/// start). Consumers that want per-window telemetry (e.g. the driver's
/// batch farm) snapshot before/after and subtract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpsCacheStats {
    /// Cold operator-set builds ([`FmmOperators::build`] actually ran).
    pub builds: u64,
    /// Lookups served from the shared cache without rebuilding.
    pub hits: u64,
}

/// Snapshot of the [`cached_operators`] hit/build counters.
pub fn ops_cache_stats() -> OpsCacheStats {
    OpsCacheStats {
        builds: OPS_BUILDS.load(Ordering::Relaxed),
        hits: OPS_HITS.load(Ordering::Relaxed),
    }
}

/// Returns (building if needed) the cached operator set for this kernel and
/// order. Thread-safe; the build runs outside the cache lock would risk
/// duplicate work, so it is kept inside — builds are rare and idempotent.
pub fn cached_operators<K: Kernel>(eq_kernel: &K, p: usize) -> Arc<FmmOperators> {
    let key: CacheKey = (eq_kernel.name(), eq_kernel.param_bits(), p);
    let mut guard = OPS_CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(ops) = map.get(&key) {
        OPS_HITS.fetch_add(1, Ordering::Relaxed);
        return ops.clone();
    }
    let ops = Arc::new(FmmOperators::build(eq_kernel, p));
    OPS_BUILDS.fetch_add(1, Ordering::Relaxed);
    map.insert(key, ops.clone());
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{direct_eval_serial, LaplaceSL, StokesSL};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// The equivalent-density round trip: sources inside a unit box must be
    /// representable on the upward equivalent surface such that the far
    /// field matches.
    #[test]
    fn upward_equivalent_reproduces_far_field_laplace() {
        let kernel = LaplaceSL;
        let p = 6;
        let ops = FmmOperators::build(&kernel, p);
        let mut rng = StdRng::seed_from_u64(3);
        // sources inside the unit box
        let srcs: Vec<Vec3> = (0..30)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-0.9..0.9),
                    rng.random_range(-0.9..0.9),
                    rng.random_range(-0.9..0.9),
                )
            })
            .collect();
        let data: Vec<f64> = (0..30).map(|_| rng.random_range(-1.0..1.0)).collect();
        // S2M: evaluate at upward check surface, solve for equivalent density
        let uc = cube_surface(p, Vec3::ZERO, RAD_OUTER);
        let mut check = vec![0.0; uc.len()];
        direct_eval_serial(&kernel, &srcs, &data, &uc, &mut check);
        let equiv = ops.uc2ue.matvec(&check);
        // far targets (outside 3h): equivalent field must match the true
        // field to ~1e-6 of the cancellation-free field scale Σ|q| / 4πr.
        // (Normalizing by the signed field value is hostage to random
        // cancellation — charges of mixed sign can make the true potential
        // orders of magnitude smaller than the representation scale.)
        let ue = cube_surface(p, Vec3::ZERO, RAD_INNER);
        let trgs = [
            Vec3::new(5.0, 0.0, 0.0),
            Vec3::new(3.5, 3.5, -2.0),
            Vec3::new(0.0, -6.0, 1.0),
        ];
        let mut truth = vec![0.0; trgs.len()];
        direct_eval_serial(&kernel, &srcs, &data, &trgs, &mut truth);
        let mut approx = vec![0.0; trgs.len()];
        direct_eval_serial(&kernel, &ue, &equiv, &trgs, &mut approx);
        let qsum: f64 = data.iter().map(|q| q.abs()).sum();
        for (i, trg) in trgs.iter().enumerate() {
            let scale = qsum / (4.0 * std::f64::consts::PI * trg.norm());
            assert!(
                (truth[i] - approx[i]).abs() < 1e-6 * scale,
                "target {trg:?}: {} vs {} (scale {scale})",
                truth[i],
                approx[i]
            );
        }
    }

    #[test]
    fn upward_equivalent_reproduces_far_field_stokes() {
        let kernel = StokesSL { mu: 1.0 };
        let p = 6;
        let ops = FmmOperators::build(&kernel, p);
        let mut rng = StdRng::seed_from_u64(4);
        let srcs: Vec<Vec3> = (0..20)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-0.8..0.8),
                    rng.random_range(-0.8..0.8),
                    rng.random_range(-0.8..0.8),
                )
            })
            .collect();
        let data: Vec<f64> = (0..60).map(|_| rng.random_range(-1.0..1.0)).collect();
        let uc = cube_surface(p, Vec3::ZERO, RAD_OUTER);
        let mut check = vec![0.0; uc.len() * 3];
        direct_eval_serial(&kernel, &srcs, &data, &uc, &mut check);
        let equiv = ops.uc2ue.matvec(&check);
        let ue = cube_surface(p, Vec3::ZERO, RAD_INNER);
        let trg = vec![Vec3::new(4.0, 2.0, -3.0)];
        let mut truth = vec![0.0; 3];
        direct_eval_serial(&kernel, &srcs, &data, &trg, &mut truth);
        let mut approx = vec![0.0; 3];
        direct_eval_serial(&kernel, &ue, &equiv, &trg, &mut approx);
        // vector-norm relative error; p = 6 gives ~1e-5 for the Stokeslet
        let num: f64 = truth
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = truth.iter().map(|a| a * a).sum::<f64>().sqrt();
        assert!(num / den < 1e-4, "relative error {}", num / den);
    }

    #[test]
    fn m2m_preserves_far_field() {
        // a source in a child box, translated to the parent representation
        let kernel = LaplaceSL;
        let p = 6;
        let ops = FmmOperators::build(&kernel, p);
        // child octant 3 => (+,+,-): center (0.5, 0.5, -0.5), half 0.5
        let octant = 3usize;
        let cc = child_center(octant);
        let src = vec![cc + Vec3::new(0.1, -0.2, 0.15)];
        let data = vec![1.0];
        // child S2M
        let cuc = cube_surface(p, cc, RAD_OUTER * 0.5);
        let mut check = vec![0.0; cuc.len()];
        direct_eval_serial(&kernel, &src, &data, &cuc, &mut check);
        // child pinv = unit pinv scaled by (1/2)^{-deg} = 2^{deg}... apply
        // via the scale rule D = h^{-deg} · pinv_unit · V with h = 0.5
        let child_equiv = {
            let mut d = ops.uc2ue.matvec(&check);
            let s = 0.5_f64.powf(-ops.deg);
            d.iter_mut().for_each(|v| *v *= s);
            d
        };
        // M2M to parent
        let parent_equiv = ops.m2m[octant].matvec(&child_equiv);
        // compare far fields
        let ue = cube_surface(p, Vec3::ZERO, RAD_INNER);
        let trg = vec![Vec3::new(0.0, 7.0, 0.0)];
        let mut truth = vec![0.0];
        direct_eval_serial(&kernel, &src, &data, &trg, &mut truth);
        let mut approx = vec![0.0];
        direct_eval_serial(&kernel, &ue, &parent_equiv, &trg, &mut approx);
        assert!(
            (truth[0] - approx[0]).abs() < 1e-6 * truth[0].abs(),
            "{} vs {}",
            truth[0],
            approx[0]
        );
    }

    #[test]
    fn operator_cache_returns_same_instance() {
        let k = LaplaceSL;
        let before = ops_cache_stats();
        let a = cached_operators(&k, 4);
        let b = cached_operators(&k, 4);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cached_operators(&StokesSL { mu: 1.0 }, 4);
        assert_eq!(c.vdim, 3);
        // telemetry: the repeat lookup is a hit, and every distinct
        // (kernel, order) pair builds at most once per process
        let after = ops_cache_stats();
        assert!(
            after.hits >= before.hits + 1,
            "repeat lookup not counted as a hit: {before:?} -> {after:?}"
        );
        assert!(
            after.builds >= before.builds,
            "build counter went backwards: {before:?} -> {after:?}"
        );
        let again = {
            let _ = cached_operators(&k, 4);
            ops_cache_stats()
        };
        assert_eq!(again.builds, after.builds, "warm lookup rebuilt operators");
        assert_eq!(again.hits, after.hits + 1);
    }
}
