//! Equivalent/check surfaces for the kernel-independent FMM.
//!
//! Following Ying et al. and PVFMM, each octree box carries cube-shaped
//! auxiliary surfaces sampled with a regular `p × p` grid per face:
//!
//! - upward equivalent surface at radius `RAD_INNER · h` (just outside the
//!   box) carrying the outgoing representation;
//! - upward check surface at radius `RAD_OUTER · h` (just inside the
//!   far-field boundary) where outgoing fields are matched;
//! - downward check surface at `RAD_INNER · h` and downward equivalent
//!   surface at `RAD_OUTER · h` for the incoming representation.

use linalg::Vec3;

/// Inner auxiliary-surface radius relative to the box half-width
/// (PVFMM's 1.05).
pub const RAD_INNER: f64 = 1.05;
/// Outer auxiliary-surface radius relative to the box half-width
/// (PVFMM's 2.95, just inside the 3h far-field boundary).
pub const RAD_OUTER: f64 = 2.95;

/// Number of points on a cube surface sampled with `p` points per edge:
/// `p³ − (p−2)³` (all grid points with at least one extreme coordinate).
pub fn surface_point_count(p: usize) -> usize {
    debug_assert!(p >= 2);
    p * p * p - (p - 2) * (p - 2) * (p - 2)
}

/// Sample points of the cube surface `center ± radius` with `p` points per
/// edge, in a deterministic order.
pub fn cube_surface(p: usize, center: Vec3, radius: f64) -> Vec<Vec3> {
    assert!(p >= 2, "cube_surface requires p >= 2");
    let mut pts = Vec::with_capacity(surface_point_count(p));
    let step = 2.0 / (p as f64 - 1.0);
    for k in 0..p {
        for j in 0..p {
            for i in 0..p {
                let on_surface =
                    i == 0 || i == p - 1 || j == 0 || j == p - 1 || k == 0 || k == p - 1;
                if !on_surface {
                    continue;
                }
                let x = -1.0 + step * i as f64;
                let y = -1.0 + step * j as f64;
                let z = -1.0 + step * k as f64;
                pts.push(center + Vec3::new(x, y, z) * radius);
            }
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_count_formula() {
        for p in [2usize, 3, 4, 6, 8] {
            assert_eq!(
                cube_surface(p, Vec3::ZERO, 1.0).len(),
                surface_point_count(p)
            );
        }
        assert_eq!(surface_point_count(2), 8);
        assert_eq!(surface_point_count(4), 56);
        assert_eq!(surface_point_count(6), 152);
    }

    #[test]
    fn points_lie_on_cube_surface() {
        let r = 1.7;
        let c = Vec3::new(0.5, -1.0, 2.0);
        for pt in cube_surface(5, c, r) {
            let d = pt - c;
            let m = d.x.abs().max(d.y.abs()).max(d.z.abs());
            assert!((m - r).abs() < 1e-12);
        }
    }

    #[test]
    fn no_duplicate_points() {
        let pts = cube_surface(6, Vec3::ZERO, 1.0);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                assert!((pts[i] - pts[j]).norm() > 1e-9);
            }
        }
    }
}
