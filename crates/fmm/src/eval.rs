//! The kernel-independent FMM evaluation engine.
//!
//! Separates *setup* (octree construction, interaction lists, point
//! permutations, evaluation plan — geometry-dependent) from *evaluation*
//! (upward pass, M2L/P2L, downward pass, P2P/L2T/M2T — density-dependent).
//! The boundary solver calls [`Fmm::evaluate`] once per GMRES iteration
//! with a new density on fixed geometry, exactly the access pattern the
//! paper's BIE-solve loop has against PVFMM.
//!
//! Evaluation is arena-based: all equivalent densities live in flat
//! level-major `Vec<f64>` buffers allocated once in [`Fmm::new`] and
//! reused across calls, and every per-node kernel sum goes through the
//! vectorized [`Kernel::eval_block`] path. The M2L stage — the dominant
//! far-field cost — is batched level by level: interactions are grouped at
//! setup into the 316 translation-offset classes, and each class is
//! dispatched as one dense GEMM over a gathered block of source densities
//! (`linalg::gemm_acc`) instead of one HashMap lookup + matvec per
//! interaction. See `crates/fmm/README.md` for the layout and the
//! before/after numbers.

use crate::ops::{cached_operators, m2l_class, FmmOperators};
use crate::surface::{cube_surface, RAD_INNER, RAD_OUTER};
use kernels::Kernel;
use linalg::{gemm_acc, Vec3};
use octree::{MortonKey, Octree, TreeOptions, MAX_DEPTH, NONE};
use parking_lot::Mutex;
use rayon::par;
use std::cell::RefCell;
use std::sync::Arc;

/// Tuning parameters of the FMM.
#[derive(Clone, Copy, Debug)]
pub struct FmmOptions {
    /// Equivalent-surface order (points per cube edge). 4 ≈ 3–4 digits,
    /// 6 ≈ 5–6 digits, 8 ≈ 8 digits for the kernels used here.
    pub order: usize,
    /// Octree leaf capacity (sources + targets).
    pub leaf_capacity: usize,
    /// Octree depth cap.
    pub max_depth: u32,
}

impl Default for FmmOptions {
    fn default() -> Self {
        FmmOptions {
            order: 6,
            leaf_capacity: 160,
            max_depth: 14,
        }
    }
}

/// Pairs-per-block of the batched M2L dispatch: a block's gathered source
/// densities and check results must fit in L2 alongside one stream of the
/// translation operator.
const M2L_BLOCK: usize = 64;

/// One M2L translation-offset class at one level: all same-level V-list
/// interactions whose source anchor minus target anchor equals the class
/// offset. Within a class every target appears at most once (the offset
/// determines the source), which is what makes the scatter of the batched
/// GEMM result race-free.
struct M2lGroup {
    /// Index into [`FmmOperators::m2l_t`].
    class: u16,
    /// Level-local check-arena rows of the targets (unique within the
    /// group), sorted ascending for scatter locality.
    trg_rows: Vec<u32>,
    /// Global up-arena slots of the sources, aligned with `trg_rows`.
    src_slots: Vec<u32>,
}

/// Per-level portion of the evaluation plan. Node ids in slot order are
/// `tree.levels[level]` — not duplicated here.
struct LevelPlan {
    /// M2L classes with at least one interaction at this level.
    groups: Vec<M2lGroup>,
    /// Level-local check rows that receive P2L (X-list) contributions…
    x_rows: Vec<u32>,
    /// …and the node ids they belong to, aligned with `x_rows`.
    x_nodes: Vec<u32>,
    /// `h_level^{-deg}`: scale of the uc2ue / dc2de pseudo-inverse solves.
    scale_inv: f64,
    /// `h_level^{+deg}`: scale of the M2L translation.
    scale_m2l: f64,
    /// Per-component equivalent-density multipliers `h^{e_j}` applied at
    /// L2T/M2T (empty when all scale exponents are zero).
    dens_scale: Vec<f64>,
}

/// The geometry-dependent evaluation plan, fully precomputed in
/// [`Fmm::new`] so that [`Fmm::evaluate`] does no geometry work and no
/// per-node allocation.
struct EvalPlan {
    /// Stacked equivalent-density length per node (`n_surf · sdim`).
    nd_eq: usize,
    /// Stacked check-value length per node (`n_surf · vdim`).
    nd_chk: usize,
    /// Node id → global arena slot (level-major: all of level 0, then 1…).
    slot: Vec<u32>,
    /// First slot of each level; `level_ofs[levels.len()]` = total slots.
    level_ofs: Vec<usize>,
    levels: Vec<LevelPlan>,
    /// Unit-scale auxiliary cube surface (center 0, radius 1). Every
    /// node's inner (`RAD_INNER · h`) and outer (`RAD_OUTER · h`) surface
    /// is its affine image, generated into per-worker scratch at use —
    /// O(n_surf) fma against the kernel sums that consume it, and no
    /// per-node surface arrays pinned for the Fmm's lifetime.
    unit_surf: Vec<Vec3>,
    /// Whether the node's subtree contains any sources (⇒ its upward
    /// equivalent can be nonzero). Replaces the seed's per-interaction
    /// zero-scan of the source density.
    has_src: Vec<bool>,
    /// Whether the node receives V- or X-list contributions.
    receives: Vec<bool>,
    /// Whether the node or any ancestor receives (⇒ its downward
    /// equivalent can be nonzero).
    has_dn: Vec<bool>,
    /// Leaves with at least one target, in `out_ranges` order.
    leaves: Vec<u32>,
    /// Disjoint `[start, end)` ranges of the Morton-ordered output buffer,
    /// one per entry of `leaves`.
    out_ranges: Vec<(usize, usize)>,
    /// Maximum node count over levels (sizes the check arena).
    max_level_len: usize,
}

/// Flat evaluation arenas, allocated once and reused across
/// [`Fmm::evaluate`] calls.
struct Arenas {
    /// Morton-permuted source data (`n_src · sd`).
    data: Vec<f64>,
    /// Upward equivalent densities, `slots · nd_eq`, level-major.
    up: Vec<f64>,
    /// Downward equivalent densities, same layout.
    dn: Vec<f64>,
    /// Downward check values of the level currently being processed
    /// (`max_level_len · nd_chk`).
    check: Vec<f64>,
    /// Results for leaf-resident targets, in Morton target order.
    out_sorted: Vec<f64>,
    /// Results for virtual targets, grouped per [`VirtGroup`].
    virt_out: Vec<f64>,
}

/// Targets of one internal "virtual leaf" owner on a frozen source tree.
///
/// A source-only tree prunes source-free regions, so a target placed there
/// by [`Fmm::set_targets`] has an *internal* deepest covering node. Its
/// potential is assembled exactly like a leaf's — L2T from the owner's
/// downward equivalent, P2P over adjacent leaves, M2T from the W-style
/// near list — plus a recursive sweep over the owner's own subtree (the
/// part a real leaf covers via its own U-list entry).
struct VirtGroup {
    /// Internal node that covers every target of the group.
    owner: u32,
    /// Adjacent leaves (exact P2P), excluding the owner.
    u_list: Vec<u32>,
    /// Non-adjacent subtrees with adjacent parents (multipole at target).
    w_list: Vec<u32>,
    /// Original target indices, Morton-ordered.
    idx: Vec<u32>,
    /// Target points, aligned with `idx`.
    pts: Vec<Vec3>,
    /// Deep Morton codes, aligned with `idx` (sorted ascending).
    codes: Vec<u64>,
    /// `[start, end)` range of the group in the `virt_out` arena.
    out_range: (usize, usize),
}

/// Per-worker scratch (check values during S2M, gather/result blocks of
/// the batched M2L, scaled densities at L2T/M2T). Thread-local so the
/// passes allocate nothing per node in steady state.
#[derive(Default)]
struct Scratch {
    check: Vec<f64>,
    sblk: Vec<f64>,
    yblk: Vec<f64>,
    dens: Vec<f64>,
    surf: Vec<Vec3>,
}

/// Writes the affine image `center + unit · radius` of the unit surface
/// into `out` — identical arithmetic to `cube_surface(p, center, radius)`.
#[inline]
fn fill_surface(unit: &[Vec3], center: Vec3, radius: f64, out: &mut Vec<Vec3>) {
    out.clear();
    out.extend(unit.iter().map(|&u| center + u * radius));
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// A configured FMM over fixed source/target geometry.
pub struct Fmm<KS: Kernel, KE: Kernel> {
    src_kernel: KS,
    eq_kernel: KE,
    ops: Arc<FmmOperators>,
    tree: Octree,
    /// Source points in Morton order.
    src_pts: Vec<Vec3>,
    /// Target points in Morton order.
    trg_pts: Vec<Vec3>,
    n_trg: usize,
    sd: usize,
    td: usize,
    plan: EvalPlan,
    arenas: Mutex<Arenas>,
    /// Virtual-target groups of the current target set (empty unless the
    /// tree was frozen on sources only and targets fell in pruned regions).
    virt: Vec<VirtGroup>,
    /// `[start, end)` ranges into `virt_out`, aligned with `virt`.
    virt_ranges: Vec<(usize, usize)>,
    /// Original indices of targets outside the root cube…
    outside_idx: Vec<u32>,
    /// …and their points, evaluated by exact direct summation.
    outside_pts: Vec<Vec3>,
}

impl<KS: Kernel, KE: Kernel> Fmm<KS, KE> {
    /// Builds the tree, binds the precomputed operators, and lays out the
    /// evaluation plan and arenas.
    ///
    /// `src_kernel` maps the physical source data (forces, density/normal
    /// pairs) to values; `eq_kernel` is the single-layer kernel of the same
    /// PDE used for all equivalent densities (its value dimension must match
    /// `src_kernel`'s target dimension).
    pub fn new(
        src_kernel: KS,
        eq_kernel: KE,
        src: &[Vec3],
        trg: &[Vec3],
        opts: FmmOptions,
    ) -> Self {
        assert_eq!(
            src_kernel.trg_dim(),
            eq_kernel.trg_dim(),
            "source and equivalent kernels must produce the same values"
        );
        let ops = cached_operators(&eq_kernel, opts.order);
        Self::with_ops(src_kernel, eq_kernel, ops, src, trg, opts)
    }

    /// Like [`Fmm::new`] but with explicitly provided operators (used to
    /// experiment with truncation tolerances; normal callers use the cache).
    pub fn with_ops(
        src_kernel: KS,
        eq_kernel: KE,
        ops: Arc<FmmOperators>,
        src: &[Vec3],
        trg: &[Vec3],
        opts: FmmOptions,
    ) -> Self {
        let tree = Octree::build(
            src,
            trg,
            TreeOptions {
                leaf_capacity: opts.leaf_capacity,
                max_depth: opts.max_depth,
            },
        );
        Self::from_tree(src_kernel, eq_kernel, ops, src, trg, tree)
    }

    /// Builds a *persistent-plan* FMM: the tree is frozen on the sources
    /// alone, then the targets are bound with [`Fmm::set_targets`].
    ///
    /// Unlike [`Fmm::new`], whose tree shape depends on both point sets,
    /// the frozen tree, interaction lists, operators, and arenas are
    /// target-independent — [`Fmm::set_targets`] / [`Fmm::evaluate_at`]
    /// re-bin a moving target set in O(targets · depth) without rebuilding
    /// anything source-side. Two frozen instances over the same sources
    /// produce bit-identical results for the same targets and densities,
    /// which is what makes a long-lived replanned instance a drop-in for a
    /// fresh per-call build.
    pub fn frozen(
        src_kernel: KS,
        eq_kernel: KE,
        src: &[Vec3],
        trg: &[Vec3],
        opts: FmmOptions,
    ) -> Self {
        assert_eq!(
            src_kernel.trg_dim(),
            eq_kernel.trg_dim(),
            "source and equivalent kernels must produce the same values"
        );
        let ops = cached_operators(&eq_kernel, opts.order);
        let tree = Octree::build(
            src,
            &[],
            TreeOptions {
                leaf_capacity: opts.leaf_capacity,
                max_depth: opts.max_depth,
            },
        );
        let mut fmm = Self::from_tree(src_kernel, eq_kernel, ops, src, &[], tree);
        fmm.set_targets(trg);
        fmm
    }

    /// Shared tail of the constructors: permutes points, lays out the plan
    /// and arenas over an already-built tree.
    fn from_tree(
        src_kernel: KS,
        eq_kernel: KE,
        ops: Arc<FmmOperators>,
        src: &[Vec3],
        trg: &[Vec3],
        tree: Octree,
    ) -> Self {
        let src_pts: Vec<Vec3> = tree.src_order.iter().map(|&i| src[i as usize]).collect();
        let trg_pts: Vec<Vec3> = tree.trg_order.iter().map(|&i| trg[i as usize]).collect();
        let sd = src_kernel.src_dim();
        let td = src_kernel.trg_dim();
        let plan = build_plan(&tree, &ops);
        let arenas = Mutex::new(Arenas {
            data: vec![0.0; src.len() * sd],
            up: vec![0.0; plan.level_ofs[plan.levels.len()] * plan.nd_eq],
            dn: vec![0.0; plan.level_ofs[plan.levels.len()] * plan.nd_eq],
            check: vec![0.0; plan.max_level_len * plan.nd_chk],
            out_sorted: vec![0.0; trg.len() * td],
            virt_out: Vec::new(),
        });
        Fmm {
            src_kernel,
            eq_kernel,
            ops,
            tree,
            src_pts,
            trg_pts,
            n_trg: trg.len(),
            sd,
            td,
            plan,
            arenas,
            virt: Vec::new(),
            virt_ranges: Vec::new(),
            outside_idx: Vec::new(),
            outside_pts: Vec::new(),
        }
    }

    /// Re-bins a new target set onto the frozen source tree: a target-only
    /// replan. The tree structure, interaction lists, operator tables,
    /// upward/downward arenas, and the whole source side are untouched;
    /// only the per-leaf output ranges, the virtual-target groups, and the
    /// output arenas are refreshed.
    ///
    /// Targets in pruned (source-free) regions are grouped under their
    /// internal covering node and evaluated through the virtual-leaf path;
    /// targets outside the root cube are evaluated by direct summation.
    pub fn set_targets(&mut self, trg: &[Vec3]) {
        let ret = self.tree.retarget(trg);
        self.trg_pts = self
            .tree
            .trg_order
            .iter()
            .map(|&i| trg[i as usize])
            .collect();
        self.n_trg = trg.len();
        let td = self.td;

        // refresh the leaf output ranges (the only target-dependent plan
        // state; `has_dn`/`receives`/`has_src` are all source-side)
        self.plan.leaves.clear();
        self.plan.out_ranges.clear();
        for li in self.tree.leaves() {
            let node = &self.tree.nodes[li as usize];
            if node.ntrg() > 0 {
                self.plan.leaves.push(li);
                self.plan.out_ranges.push((
                    node.trg_range.0 as usize * td,
                    node.trg_range.1 as usize * td,
                ));
            }
        }

        // group virtual targets by owner (ret.virt is sorted by owner)
        self.virt.clear();
        self.virt_ranges.clear();
        let mut ofs = 0usize;
        let mut i = 0usize;
        while i < ret.virt.len() {
            let owner = ret.virt[i].0;
            let mut j = i;
            while j < ret.virt.len() && ret.virt[j].0 == owner {
                j += 1;
            }
            let (u_list, w_list) = self.tree.near_lists(owner);
            let idx: Vec<u32> = ret.virt[i..j].iter().map(|&(_, _, t)| t).collect();
            let codes: Vec<u64> = ret.virt[i..j].iter().map(|&(_, c, _)| c).collect();
            let pts: Vec<Vec3> = idx.iter().map(|&t| trg[t as usize]).collect();
            let nt = j - i;
            let out_range = (ofs * td, (ofs + nt) * td);
            self.virt.push(VirtGroup {
                owner,
                u_list,
                w_list,
                idx,
                pts,
                codes,
                out_range,
            });
            self.virt_ranges.push(out_range);
            ofs += nt;
            i = j;
        }
        self.outside_idx = ret.outside;
        self.outside_pts = self.outside_idx.iter().map(|&t| trg[t as usize]).collect();

        let mut ar = self.arenas.lock();
        ar.out_sorted.resize(self.tree.trg_order.len() * td, 0.0);
        ar.virt_out.resize(ofs * td, 0.0);
    }

    /// [`Fmm::set_targets`] followed by [`Fmm::evaluate`]: evaluates the
    /// potential of `src_data` at a fresh target set on the frozen plan.
    pub fn evaluate_at(&mut self, src_data: &[f64], trg: &[Vec3]) -> Vec<f64> {
        self.set_targets(trg);
        self.evaluate(src_data)
    }

    /// The underlying octree (e.g. for statistics).
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Evaluates the potential of `src_data` (original source ordering,
    /// `src_dim` entries per source) at every target; returns values in the
    /// original target ordering (`trg_dim` entries per target).
    pub fn evaluate(&self, src_data: &[f64]) -> Vec<f64> {
        assert_eq!(
            src_data.len(),
            self.src_pts.len() * self.sd,
            "source data length"
        );
        let mut guard = self.arenas.lock();
        let ar = &mut *guard;

        // permute source data into Morton order
        for (pos, &orig) in self.tree.src_order.iter().enumerate() {
            let o = orig as usize * self.sd;
            ar.data[pos * self.sd..(pos + 1) * self.sd].copy_from_slice(&src_data[o..o + self.sd]);
        }

        // pass timers, enabled with FMM_TIMERS=1 (perf diagnostics)
        let timers = std::env::var_os("FMM_TIMERS").is_some_and(|v| v == "1");
        let t0 = std::time::Instant::now();
        self.upward(&ar.data, &mut ar.up);
        let t1 = std::time::Instant::now();
        self.downward(&ar.data, &ar.up, &mut ar.dn, &mut ar.check);
        let t2 = std::time::Instant::now();
        self.leaf_eval(&ar.data, &ar.up, &ar.dn, &mut ar.out_sorted);
        if !self.virt.is_empty() {
            self.virtual_eval(&ar.data, &ar.up, &ar.dn, &mut ar.virt_out);
        }
        if timers {
            let t3 = std::time::Instant::now();
            eprintln!(
                "fmm timers: upward {:.2} ms, downward {:.2} ms, leaves {:.2} ms",
                (t1 - t0).as_secs_f64() * 1e3,
                (t2 - t1).as_secs_f64() * 1e3,
                (t3 - t2).as_secs_f64() * 1e3,
            );
        }

        // scatter back to the original target order
        let mut out = vec![0.0; self.n_trg * self.td];
        for (pos, &orig) in self.tree.trg_order.iter().enumerate() {
            let o = orig as usize * self.td;
            out[o..o + self.td].copy_from_slice(&ar.out_sorted[pos * self.td..(pos + 1) * self.td]);
        }
        for g in &self.virt {
            for (k, &orig) in g.idx.iter().enumerate() {
                let o = orig as usize * self.td;
                let s = g.out_range.0 + k * self.td;
                out[o..o + self.td].copy_from_slice(&ar.virt_out[s..s + self.td]);
            }
        }
        if !self.outside_idx.is_empty() {
            // out-of-cube targets: exact direct summation over all sources
            let mut tmp = vec![0.0; self.outside_pts.len() * self.td];
            self.src_kernel
                .eval_block(&self.outside_pts, &self.src_pts, &ar.data, &mut tmp);
            for (k, &orig) in self.outside_idx.iter().enumerate() {
                let o = orig as usize * self.td;
                out[o..o + self.td].copy_from_slice(&tmp[k * self.td..(k + 1) * self.td]);
            }
        }
        out
    }

    /// Upward pass: S2M at source leaves (via `eval_block` on the
    /// precomputed check surfaces), M2M up the tree. Writes the level-major
    /// `up` arena in place, finest level first.
    fn upward(&self, data: &[f64], up: &mut [f64]) {
        let plan = &self.plan;
        let nodes = &self.tree.nodes;
        let (nd_eq, nd_chk) = (plan.nd_eq, plan.nd_chk);
        for level in (0..plan.levels.len()).rev() {
            let lp = &plan.levels[level];
            let level_nodes = &self.tree.levels[level];
            let start = plan.level_ofs[level] * nd_eq;
            let end = plan.level_ofs[level + 1] * nd_eq;
            let (head, deeper) = up.split_at_mut(end);
            let cur = &mut head[start..];
            let deeper = &*deeper;
            let deeper_base = plan.level_ofs[level + 1];
            par::chunks_mut(cur, nd_eq, |i, equiv| {
                let ni = level_nodes[i] as usize;
                if !plan.has_src[ni] {
                    equiv.fill(0.0);
                    return;
                }
                let node = &nodes[ni];
                if node.is_leaf {
                    // S2M: sources -> upward check surface -> density
                    let h = self.tree.node_half(level_nodes[i]);
                    let center = self.tree.node_center(level_nodes[i]);
                    let (a, b) = (node.src_range.0 as usize, node.src_range.1 as usize);
                    SCRATCH.with(|s| {
                        let s = &mut *s.borrow_mut();
                        fill_surface(&plan.unit_surf, center, RAD_OUTER * h, &mut s.surf);
                        s.check.resize(nd_chk, 0.0);
                        let check = &mut s.check[..nd_chk];
                        check.fill(0.0);
                        self.src_kernel.eval_block(
                            &s.surf,
                            &self.src_pts[a..b],
                            &data[a * self.sd..b * self.sd],
                            check,
                        );
                        self.ops.uc2ue.matvec_into(check, equiv);
                    });
                    for v in equiv.iter_mut() {
                        *v *= lp.scale_inv;
                    }
                } else {
                    // M2M from children (already computed: deeper level)
                    equiv.fill(0.0);
                    for (o, &c) in node.children.iter().enumerate() {
                        if c != NONE && plan.has_src[c as usize] {
                            let cs = plan.slot[c as usize] as usize - deeper_base;
                            self.ops.m2m[o].matvec_acc(
                                &deeper[cs * nd_eq..(cs + 1) * nd_eq],
                                1.0,
                                equiv,
                            );
                        }
                    }
                }
            });
        }
    }

    /// Downward pass, level by level from the root: batched M2L per
    /// translation-offset class (one GEMM per class), P2L from X lists,
    /// then the dc2de solve fused with L2L from the parent.
    fn downward(&self, data: &[f64], up: &[f64], dn: &mut [f64], check: &mut [f64]) {
        let plan = &self.plan;
        let nodes = &self.tree.nodes;
        let (nd_eq, nd_chk) = (plan.nd_eq, plan.nd_chk);
        for level in 0..plan.levels.len() {
            let lp = &plan.levels[level];
            let level_nodes = &self.tree.levels[level];
            let nlev = level_nodes.len();
            let check = &mut check[..nlev * nd_chk];
            check.fill(0.0);

            // M2L: one batched GEMM dispatch per offset class. Within a
            // class each target row is unique, so blocks scatter race-free.
            for g in &lp.groups {
                let a_t = self.ops.m2l_t[g.class as usize]
                    .as_ref()
                    .expect("V-list offset outside precomputed M2L set");
                par::for_each_row_block(check, nd_chk, &g.trg_rows, M2L_BLOCK, |start, view| {
                    SCRATCH.with(|s| {
                        let s = &mut *s.borrow_mut();
                        let b = view.len();
                        s.sblk.resize(M2L_BLOCK * nd_eq, 0.0);
                        s.yblk.resize(M2L_BLOCK * nd_chk, 0.0);
                        // gather source densities as block rows
                        for r in 0..b {
                            let ss = g.src_slots[start + r] as usize;
                            s.sblk[r * nd_eq..(r + 1) * nd_eq]
                                .copy_from_slice(&up[ss * nd_eq..(ss + 1) * nd_eq]);
                        }
                        // Checkᵀ-block = h^{deg} · Equivᵀ-block · Kᵀ
                        s.yblk[..b * nd_chk].fill(0.0);
                        gemm_acc(
                            b,
                            nd_chk,
                            nd_eq,
                            lp.scale_m2l,
                            &s.sblk,
                            a_t.data(),
                            &mut s.yblk,
                        );
                        for r in 0..b {
                            let yrow = &s.yblk[r * nd_chk..(r + 1) * nd_chk];
                            for (c, y) in view.row(r).iter_mut().zip(yrow) {
                                *c += y;
                            }
                        }
                    });
                });
            }

            // P2L from the X list: direct source evaluation at the
            // downward check surface
            par::for_each_row_block(check, nd_chk, &lp.x_rows, 1, |start, view| {
                let id = lp.x_nodes[start];
                let ni = id as usize;
                let h = self.tree.node_half(id);
                let center = self.tree.node_center(id);
                let row = view.row(0);
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    fill_surface(&plan.unit_surf, center, RAD_INNER * h, &mut s.surf);
                    for &x in &nodes[ni].x_list {
                        let (a, b) = (
                            nodes[x as usize].src_range.0 as usize,
                            nodes[x as usize].src_range.1 as usize,
                        );
                        if a == b {
                            continue;
                        }
                        self.src_kernel.eval_block(
                            &s.surf,
                            &self.src_pts[a..b],
                            &data[a * self.sd..b * self.sd],
                            row,
                        );
                    }
                });
            });

            // dc2de solve + L2L from the parent, writing dn in place
            let dstart = plan.level_ofs[level] * nd_eq;
            let (shallower, rest) = dn.split_at_mut(dstart);
            let cur = &mut rest[..nlev * nd_eq];
            let check = &*check;
            par::chunks_mut(cur, nd_eq, |i, equiv| {
                let ni = level_nodes[i] as usize;
                if !plan.has_dn[ni] {
                    equiv.fill(0.0);
                    return;
                }
                if plan.receives[ni] {
                    self.ops
                        .dc2de
                        .matvec_into(&check[i * nd_chk..(i + 1) * nd_chk], equiv);
                    for v in equiv.iter_mut() {
                        *v *= lp.scale_inv;
                    }
                } else {
                    equiv.fill(0.0);
                }
                let node = &nodes[ni];
                if node.parent != NONE && plan.has_dn[node.parent as usize] {
                    let ps = plan.slot[node.parent as usize] as usize;
                    let oct = node.key.child_index();
                    self.ops.l2l[oct].matvec_acc(
                        &shallower[ps * nd_eq..(ps + 1) * nd_eq],
                        1.0,
                        equiv,
                    );
                }
            });
        }
    }

    /// Leaf evaluation: P2P over U lists, L2T from the own downward
    /// equivalent, M2T from W-list multipoles — all through `eval_block`,
    /// in parallel over leaves (disjoint target ranges).
    fn leaf_eval(&self, data: &[f64], up: &[f64], dn: &[f64], out_sorted: &mut [f64]) {
        let plan = &self.plan;
        let nodes = &self.tree.nodes;
        let nd_eq = plan.nd_eq;
        let sdim = self.ops.sdim;
        out_sorted.fill(0.0);
        par::for_each_disjoint_range(out_sorted, &plan.out_ranges, |i, out| {
            let li = plan.leaves[i] as usize;
            let node = &nodes[li];
            let (t0, t1) = (node.trg_range.0 as usize, node.trg_range.1 as usize);
            let trgs = &self.trg_pts[t0..t1];

            // P2P over the U list
            for &u in &node.u_list {
                let un = &nodes[u as usize];
                let (a, b) = (un.src_range.0 as usize, un.src_range.1 as usize);
                if a == b {
                    continue;
                }
                self.src_kernel.eval_block(
                    trgs,
                    &self.src_pts[a..b],
                    &data[a * self.sd..b * self.sd],
                    out,
                );
            }

            SCRATCH.with(|s| {
                let s = &mut *s.borrow_mut();
                // L2T: own downward equivalent density on the outer surface
                if plan.has_dn[li] {
                    let slot = plan.slot[li] as usize;
                    let lp = &plan.levels[node.key.level as usize];
                    let h = self.tree.node_half(plan.leaves[i]);
                    let center = self.tree.node_center(plan.leaves[i]);
                    fill_surface(&plan.unit_surf, center, RAD_OUTER * h, &mut s.surf);
                    let row = &dn[slot * nd_eq..(slot + 1) * nd_eq];
                    let dens = scaled_density(row, &lp.dens_scale, sdim, &mut s.dens);
                    self.eq_kernel.eval_block(trgs, &s.surf, dens, out);
                }
                // M2T: W-list multipoles evaluated directly at the targets
                for &w in &node.w_list {
                    if !plan.has_src[w as usize] {
                        continue;
                    }
                    let slot = plan.slot[w as usize] as usize;
                    let lp = &plan.levels[nodes[w as usize].key.level as usize];
                    let h = self.tree.node_half(w);
                    let center = self.tree.node_center(w);
                    fill_surface(&plan.unit_surf, center, RAD_INNER * h, &mut s.surf);
                    let row = &up[slot * nd_eq..(slot + 1) * nd_eq];
                    let dens = scaled_density(row, &lp.dens_scale, sdim, &mut s.dens);
                    self.eq_kernel.eval_block(trgs, &s.surf, dens, out);
                }
            });
        });
    }

    /// Evaluation at virtual targets: exactly the leaf contribution paths
    /// with the internal owner playing the leaf's role — L2T from the
    /// owner's downward equivalent, P2P over its adjacent leaves, M2T from
    /// its W-style list — plus [`Fmm::near_rec`] over the owner's own
    /// subtree (the sources a real leaf covers via its self U-list entry).
    fn virtual_eval(&self, data: &[f64], up: &[f64], dn: &[f64], virt_out: &mut [f64]) {
        let plan = &self.plan;
        let nodes = &self.tree.nodes;
        let nd_eq = plan.nd_eq;
        let sdim = self.ops.sdim;
        virt_out.fill(0.0);
        par::for_each_disjoint_range(virt_out, &self.virt_ranges, |i, out| {
            let g = &self.virt[i];
            let trgs = &g.pts[..];

            // P2P over adjacent leaves
            for &u in &g.u_list {
                let un = &nodes[u as usize];
                let (a, b) = (un.src_range.0 as usize, un.src_range.1 as usize);
                if a == b {
                    continue;
                }
                self.src_kernel.eval_block(
                    trgs,
                    &self.src_pts[a..b],
                    &data[a * self.sd..b * self.sd],
                    out,
                );
            }

            SCRATCH.with(|s| {
                let s = &mut *s.borrow_mut();
                // L2T: the owner's downward equivalent is valid anywhere
                // inside the owner's cube
                let oi = g.owner as usize;
                if plan.has_dn[oi] {
                    let slot = plan.slot[oi] as usize;
                    let lp = &plan.levels[nodes[oi].key.level as usize];
                    let h = self.tree.node_half(g.owner);
                    let center = self.tree.node_center(g.owner);
                    fill_surface(&plan.unit_surf, center, RAD_OUTER * h, &mut s.surf);
                    let row = &dn[slot * nd_eq..(slot + 1) * nd_eq];
                    let dens = scaled_density(row, &lp.dens_scale, sdim, &mut s.dens);
                    self.eq_kernel.eval_block(trgs, &s.surf, dens, out);
                }
                // M2T: W-style multipoles (non-adjacent to the owner, so
                // at least three half-widths from any interior target)
                for &w in &g.w_list {
                    if !plan.has_src[w as usize] {
                        continue;
                    }
                    let slot = plan.slot[w as usize] as usize;
                    let lp = &plan.levels[nodes[w as usize].key.level as usize];
                    let h = self.tree.node_half(w);
                    let center = self.tree.node_center(w);
                    fill_surface(&plan.unit_surf, center, RAD_INNER * h, &mut s.surf);
                    let row = &up[slot * nd_eq..(slot + 1) * nd_eq];
                    let dens = scaled_density(row, &lp.dens_scale, sdim, &mut s.dens);
                    self.eq_kernel.eval_block(trgs, &s.surf, dens, out);
                }
                // sources inside the owner's own subtree
                for &c in &nodes[oi].children {
                    if c != NONE {
                        self.near_rec(g, c, 0, g.pts.len(), data, up, out, s);
                    }
                }
            });
        });
    }

    /// Recursive near-field sweep of subtree `m` against the Morton-sorted
    /// target run `[lo, hi)` of group `g`.
    ///
    /// Targets are partitioned into runs sharing their (virtual) cell at
    /// `m`'s level. A run whose cell is not adjacent to `m` takes `m`'s
    /// multipole directly (same-level non-adjacency gives the same ≥ 3·h
    /// margin as the V/W lists); an adjacent leaf is summed exactly; an
    /// adjacent internal node recurses into its children.
    #[allow(clippy::too_many_arguments)]
    fn near_rec(
        &self,
        g: &VirtGroup,
        m: u32,
        lo: usize,
        hi: usize,
        data: &[f64],
        up: &[f64],
        out: &mut [f64],
        s: &mut Scratch,
    ) {
        let plan = &self.plan;
        let mnode = &self.tree.nodes[m as usize];
        let level = mnode.key.level;
        let (nd_eq, sdim, td) = (plan.nd_eq, self.ops.sdim, self.td);
        let mut a = lo;
        while a < hi {
            let cell = MortonKey {
                level: MAX_DEPTH,
                code: g.codes[a],
            }
            .ancestor_at(level);
            let ub = cell.code + (1u64 << (3 * (MAX_DEPTH - level) as u64).min(63));
            let b = a + g.codes[a..hi].partition_point(|&c| c < ub);
            if !mnode.key.is_adjacent(cell) {
                if plan.has_src[m as usize] {
                    let slot = plan.slot[m as usize] as usize;
                    let lp = &plan.levels[level as usize];
                    let h = self.tree.node_half(m);
                    let center = self.tree.node_center(m);
                    fill_surface(&plan.unit_surf, center, RAD_INNER * h, &mut s.surf);
                    let row = &up[slot * nd_eq..(slot + 1) * nd_eq];
                    let dens = scaled_density(row, &lp.dens_scale, sdim, &mut s.dens);
                    self.eq_kernel.eval_block(
                        &g.pts[a..b],
                        &s.surf,
                        dens,
                        &mut out[a * td..b * td],
                    );
                }
            } else if mnode.is_leaf {
                let (sa, sb) = (mnode.src_range.0 as usize, mnode.src_range.1 as usize);
                if sa < sb {
                    self.src_kernel.eval_block(
                        &g.pts[a..b],
                        &self.src_pts[sa..sb],
                        &data[sa * self.sd..sb * self.sd],
                        &mut out[a * td..b * td],
                    );
                }
            } else {
                for &c in &mnode.children {
                    if c != NONE {
                        self.near_rec(g, c, a, b, data, up, out, s);
                    }
                }
            }
            a = b;
        }
    }
}

/// Applies the storage-scale convention without allocating: stored
/// equivalent densities on a surface of half-width `h` represent physical
/// strengths `stored · h^{e_c}` per component (see
/// [`kernels::Kernel::src_scale_exponents`]). Returns the row itself when
/// all exponents are zero.
fn scaled_density<'a>(
    row: &'a [f64],
    dens_scale: &[f64],
    sdim: usize,
    scratch: &'a mut Vec<f64>,
) -> &'a [f64] {
    if dens_scale.is_empty() {
        return row;
    }
    scratch.resize(row.len(), 0.0);
    for (j, (dst, src)) in scratch.iter_mut().zip(row).enumerate() {
        *dst = src * dens_scale[j % sdim];
    }
    &scratch[..row.len()]
}

/// Builds the geometry-dependent evaluation plan: arena slots, per-level
/// scale tables, auxiliary surfaces, source/receive flags, M2L offset-class
/// buckets, and leaf output ranges.
fn build_plan(tree: &Octree, ops: &FmmOperators) -> EvalPlan {
    let nodes = &tree.nodes;
    let n_levels = tree.levels.len();
    let nd_eq = ops.n_surf * ops.sdim;
    let nd_chk = ops.n_surf * ops.vdim;

    // level-major slot assignment
    let mut slot = vec![0u32; nodes.len()];
    let mut level_ofs = Vec::with_capacity(n_levels + 1);
    level_ofs.push(0usize);
    let mut next = 0u32;
    for level_nodes in &tree.levels {
        for &ni in level_nodes {
            slot[ni as usize] = next;
            next += 1;
        }
        level_ofs.push(next as usize);
    }
    let max_level_len = tree.levels.iter().map(|l| l.len()).max().unwrap_or(0);

    // subtree-has-sources flags, finest level first
    let mut has_src = vec![false; nodes.len()];
    for level_nodes in tree.levels.iter().rev() {
        for &ni in level_nodes {
            let node = &nodes[ni as usize];
            has_src[ni as usize] = if node.is_leaf {
                node.nsrc() > 0
            } else {
                node.children
                    .iter()
                    .any(|&c| c != NONE && has_src[c as usize])
            };
        }
    }

    // receive flags: V-list sources with multipoles, or X-list sources
    let mut receives = vec![false; nodes.len()];
    let mut has_dn = vec![false; nodes.len()];
    for level_nodes in &tree.levels {
        for &ni in level_nodes {
            let node = &nodes[ni as usize];
            let r = node.v_list.iter().any(|&v| has_src[v as usize])
                || node.x_list.iter().any(|&x| nodes[x as usize].nsrc() > 0);
            receives[ni as usize] = r;
            has_dn[ni as usize] = r || (node.parent != NONE && has_dn[node.parent as usize]);
        }
    }

    // per-level plans: scale tables, M2L class buckets, X-list rows
    let exps = &ops.scale_exps;
    let scaling = exps.iter().any(|&e| e != 0);
    let levels: Vec<LevelPlan> = (0..n_levels)
        .map(|level| {
            let level_nodes = &tree.levels[level];
            let h = tree.half / (1u64 << level) as f64;
            let dens_scale = if scaling {
                exps.iter().map(|&e| h.powi(e)).collect()
            } else {
                Vec::new()
            };

            // bucket V-list interactions by translation-offset class
            let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); crate::ops::M2L_CLASSES];
            for (row, &ni) in level_nodes.iter().enumerate() {
                let node = &nodes[ni as usize];
                if node.v_list.is_empty() {
                    continue;
                }
                let (tx, ty, tz) = node.key.anchor();
                for &v in &node.v_list {
                    if !has_src[v as usize] {
                        continue;
                    }
                    let (sx, sy, sz) = nodes[v as usize].key.anchor();
                    let class = m2l_class(
                        (sx as i64 - tx as i64) as i8,
                        (sy as i64 - ty as i64) as i8,
                        (sz as i64 - tz as i64) as i8,
                    )
                    .expect("V-list offset outside the [-3,3] cube");
                    buckets[class].push((row as u32, slot[v as usize]));
                }
            }
            let mut groups = Vec::new();
            for (class, mut pairs) in buckets.into_iter().enumerate() {
                if pairs.is_empty() {
                    continue;
                }
                pairs.sort_unstable();
                groups.push(M2lGroup {
                    class: class as u16,
                    trg_rows: pairs.iter().map(|p| p.0).collect(),
                    src_slots: pairs.iter().map(|p| p.1).collect(),
                });
            }

            let mut x_rows = Vec::new();
            let mut x_nodes = Vec::new();
            for (row, &ni) in level_nodes.iter().enumerate() {
                let node = &nodes[ni as usize];
                if node.x_list.iter().any(|&x| nodes[x as usize].nsrc() > 0) {
                    x_rows.push(row as u32);
                    x_nodes.push(ni);
                }
            }

            LevelPlan {
                groups,
                x_rows,
                x_nodes,
                scale_inv: h.powf(-ops.deg),
                scale_m2l: h.powf(ops.deg),
                dens_scale,
            }
        })
        .collect();

    // leaves with targets and their (disjoint) Morton-ordered out ranges
    let td = ops.vdim;
    let mut leaves = Vec::new();
    let mut out_ranges = Vec::new();
    for li in tree.leaves() {
        let node = &nodes[li as usize];
        if node.ntrg() > 0 {
            leaves.push(li);
            out_ranges.push((
                node.trg_range.0 as usize * td,
                node.trg_range.1 as usize * td,
            ));
        }
    }

    if std::env::var_os("FMM_TIMERS").is_some_and(|v| v == "1") {
        for (l, lp) in levels.iter().enumerate() {
            let pairs: usize = lp.groups.iter().map(|g| g.trg_rows.len()).sum();
            eprintln!(
                "fmm plan: level {l}: {} nodes, {} m2l groups, {} pairs, {} x-rows",
                tree.levels[l].len(),
                lp.groups.len(),
                pairs,
                lp.x_rows.len()
            );
        }
    }
    EvalPlan {
        nd_eq,
        nd_chk,
        slot,
        level_ofs,
        levels,
        unit_surf: cube_surface(ops.p, Vec3::ZERO, 1.0),
        has_src,
        receives,
        has_dn,
        leaves,
        out_ranges,
        max_level_len,
    }
}

/// One-shot convenience wrapper: builds the tree and evaluates once.
pub fn fmm_evaluate<KS: Kernel + Clone, KE: Kernel + Clone>(
    src_kernel: &KS,
    eq_kernel: &KE,
    src: &[Vec3],
    src_data: &[f64],
    trg: &[Vec3],
    opts: FmmOptions,
) -> Vec<f64> {
    Fmm::new(src_kernel.clone(), eq_kernel.clone(), src, trg, opts).evaluate(src_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{direct_eval, LaplaceSL, StokesDL, StokesEquiv, StokesSL};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cloud(rng: &mut StdRng, n: usize, spread: f64, offset: Vec3) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                offset
                    + Vec3::new(
                        rng.random_range(-spread..spread),
                        rng.random_range(-spread..spread),
                        rng.random_range(-spread..spread),
                    )
            })
            .collect()
    }

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
        num / den.max(1e-300)
    }

    #[test]
    fn laplace_matches_direct_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let src = cloud(&mut rng, 1500, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 700, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..src.len())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let k = LaplaceSL;
        let approx = fmm_evaluate(
            &k,
            &k,
            &src,
            &data,
            &trg,
            FmmOptions {
                order: 6,
                leaf_capacity: 60,
                max_depth: 10,
            },
        );
        let mut exact = vec![0.0; trg.len()];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn laplace_matches_direct_clustered() {
        // strong adaptivity: two tight clusters + sparse background
        let mut rng = StdRng::seed_from_u64(8);
        let mut src = cloud(&mut rng, 600, 0.02, Vec3::new(0.7, 0.7, 0.7));
        src.extend(cloud(&mut rng, 600, 0.02, Vec3::new(-0.7, -0.7, -0.7)));
        src.extend(cloud(&mut rng, 100, 1.0, Vec3::ZERO));
        let trg = src.clone();
        let data: Vec<f64> = (0..src.len())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let k = LaplaceSL;
        let approx = fmm_evaluate(
            &k,
            &k,
            &src,
            &data,
            &trg,
            FmmOptions {
                order: 6,
                leaf_capacity: 50,
                max_depth: 12,
            },
        );
        let mut exact = vec![0.0; trg.len()];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn stokes_single_layer_matches_direct() {
        let mut rng = StdRng::seed_from_u64(9);
        let src = cloud(&mut rng, 900, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 400, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..src.len() * 3)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let k = StokesSL { mu: 0.7 };
        let approx = fmm_evaluate(
            &k,
            &k,
            &src,
            &data,
            &trg,
            FmmOptions {
                order: 6,
                leaf_capacity: 70,
                max_depth: 10,
            },
        );
        let mut exact = vec![0.0; trg.len() * 3];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn stokes_double_layer_matches_direct() {
        // stresslet sources with unit normals; equivalent densities are
        // Stokeslets — the configuration the boundary solver uses.
        let mut rng = StdRng::seed_from_u64(10);
        let src = cloud(&mut rng, 800, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 300, 1.0, Vec3::new(0.1, 0.0, 0.0));
        let mut data = Vec::with_capacity(src.len() * 6);
        for _ in 0..src.len() {
            for _ in 0..3 {
                data.push(rng.random_range(-1.0..1.0));
            }
            let n = Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            )
            .normalized();
            data.extend_from_slice(&[n.x, n.y, n.z]);
        }
        let sk = StokesDL;
        // the augmented (force + source) equivalent kernel is required for
        // stresslet sources, which carry net mass flux
        let ek = StokesEquiv { mu: 1.0 };
        let approx = fmm_evaluate(
            &sk,
            &ek,
            &src,
            &data,
            &trg,
            FmmOptions {
                order: 6,
                leaf_capacity: 60,
                max_depth: 10,
            },
        );
        let mut exact = vec![0.0; trg.len() * 3];
        direct_eval(&sk, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn accuracy_improves_with_order() {
        let mut rng = StdRng::seed_from_u64(11);
        let src = cloud(&mut rng, 800, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 200, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..src.len())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let k = LaplaceSL;
        let mut exact = vec![0.0; trg.len()];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let errs: Vec<f64> = [4usize, 6]
            .iter()
            .map(|&p| {
                let approx = fmm_evaluate(
                    &k,
                    &k,
                    &src,
                    &data,
                    &trg,
                    FmmOptions {
                        order: p,
                        leaf_capacity: 50,
                        max_depth: 10,
                    },
                );
                rel_err(&approx, &exact)
            })
            .collect();
        assert!(errs[1] < errs[0] * 0.5, "orders 4/6 errors: {errs:?}");
    }

    #[test]
    fn reusable_geometry_multiple_densities() {
        let mut rng = StdRng::seed_from_u64(12);
        let src = cloud(&mut rng, 500, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 200, 1.0, Vec3::ZERO);
        let k = LaplaceSL;
        let fmm = Fmm::new(
            k,
            k,
            &src,
            &trg,
            FmmOptions {
                order: 4,
                leaf_capacity: 40,
                max_depth: 10,
            },
        );
        for seed in 0..3 {
            let mut r2 = StdRng::seed_from_u64(100 + seed);
            let data: Vec<f64> = (0..src.len()).map(|_| r2.random_range(-1.0..1.0)).collect();
            let approx = fmm.evaluate(&data);
            let mut exact = vec![0.0; trg.len()];
            direct_eval(&k, &src, &data, &trg, &mut exact);
            assert!(rel_err(&approx, &exact) < 1e-3);
        }
    }

    /// Arena reuse must not leak state between densities: evaluating A,
    /// then B, then A again must reproduce A's result bit-for-bit.
    #[test]
    fn repeated_evaluation_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(21);
        let src = cloud(&mut rng, 600, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 250, 1.0, Vec3::ZERO);
        let k = LaplaceSL;
        let fmm = Fmm::new(
            k,
            k,
            &src,
            &trg,
            FmmOptions {
                order: 4,
                leaf_capacity: 40,
                max_depth: 10,
            },
        );
        let da: Vec<f64> = (0..src.len())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let db: Vec<f64> = (0..src.len())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let first = fmm.evaluate(&da);
        let _ = fmm.evaluate(&db);
        let again = fmm.evaluate(&da);
        assert_eq!(first, again);
    }

    #[test]
    fn small_problem_is_pure_p2p() {
        // fewer points than leaf capacity: single-leaf tree, exact result
        let mut rng = StdRng::seed_from_u64(13);
        let src = cloud(&mut rng, 30, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 20, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..30).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = LaplaceSL;
        let approx = fmm_evaluate(&k, &k, &src, &data, &trg, FmmOptions::default());
        let mut exact = vec![0.0; 20];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-14);
        }
    }
}
