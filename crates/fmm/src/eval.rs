//! The kernel-independent FMM evaluation engine.
//!
//! Separates *setup* (octree construction, interaction lists, point
//! permutations — geometry-dependent) from *evaluation* (upward pass,
//! M2L/P2L, downward pass, P2P/L2T/M2T — density-dependent). The boundary
//! solver calls [`Fmm::evaluate`] once per GMRES iteration with a new
//! density on fixed geometry, exactly the access pattern the paper's
//! BIE-solve loop has against PVFMM.

use crate::ops::{cached_operators, FmmOperators};
use crate::surface::{cube_surface, RAD_INNER, RAD_OUTER};
use kernels::Kernel;
use linalg::Vec3;
use octree::{Octree, TreeOptions, NONE};
use rayon::prelude::*;
use std::sync::Arc;

/// Tuning parameters of the FMM.
#[derive(Clone, Copy, Debug)]
pub struct FmmOptions {
    /// Equivalent-surface order (points per cube edge). 4 ≈ 3–4 digits,
    /// 6 ≈ 5–6 digits, 8 ≈ 8 digits for the kernels used here.
    pub order: usize,
    /// Octree leaf capacity (sources + targets).
    pub leaf_capacity: usize,
    /// Octree depth cap.
    pub max_depth: u32,
}

impl Default for FmmOptions {
    fn default() -> Self {
        FmmOptions { order: 6, leaf_capacity: 160, max_depth: 14 }
    }
}

/// A configured FMM over fixed source/target geometry.
pub struct Fmm<KS: Kernel, KE: Kernel> {
    src_kernel: KS,
    eq_kernel: KE,
    ops: Arc<FmmOperators>,
    tree: Octree,
    /// Source points in Morton order.
    src_pts: Vec<Vec3>,
    /// Target points in Morton order.
    trg_pts: Vec<Vec3>,
    n_trg: usize,
    sd: usize,
    td: usize,
}

impl<KS: Kernel, KE: Kernel> Fmm<KS, KE> {
    /// Builds the tree and binds the precomputed operators.
    ///
    /// `src_kernel` maps the physical source data (forces, density/normal
    /// pairs) to values; `eq_kernel` is the single-layer kernel of the same
    /// PDE used for all equivalent densities (its value dimension must match
    /// `src_kernel`'s target dimension).
    pub fn new(
        src_kernel: KS,
        eq_kernel: KE,
        src: &[Vec3],
        trg: &[Vec3],
        opts: FmmOptions,
    ) -> Self {
        assert_eq!(
            src_kernel.trg_dim(),
            eq_kernel.trg_dim(),
            "source and equivalent kernels must produce the same values"
        );
        let ops = cached_operators(&eq_kernel, opts.order);
        Self::with_ops(src_kernel, eq_kernel, ops, src, trg, opts)
    }

    /// Like [`Fmm::new`] but with explicitly provided operators (used to
    /// experiment with truncation tolerances; normal callers use the cache).
    pub fn with_ops(
        src_kernel: KS,
        eq_kernel: KE,
        ops: Arc<FmmOperators>,
        src: &[Vec3],
        trg: &[Vec3],
        opts: FmmOptions,
    ) -> Self {
        let tree = Octree::build(
            src,
            trg,
            TreeOptions { leaf_capacity: opts.leaf_capacity, max_depth: opts.max_depth },
        );
        let src_pts: Vec<Vec3> = tree.src_order.iter().map(|&i| src[i as usize]).collect();
        let trg_pts: Vec<Vec3> = tree.trg_order.iter().map(|&i| trg[i as usize]).collect();
        let sd = src_kernel.src_dim();
        let td = src_kernel.trg_dim();
        Fmm {
            src_kernel,
            eq_kernel,
            ops,
            tree,
            src_pts,
            trg_pts,
            n_trg: trg.len(),
            sd,
            td,
        }
    }

    /// The underlying octree (e.g. for statistics).
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Applies the storage-scale convention: stored equivalent densities on
    /// a surface of half-width `h` represent physical strengths
    /// `stored · h^{e_c}` per component (see
    /// [`kernels::Kernel::src_scale_exponents`]).
    fn scaled_density(&self, d: &[f64], h: f64) -> Vec<f64> {
        let exps = &self.ops.scale_exps;
        if exps.iter().all(|&e| e == 0) {
            return d.to_vec();
        }
        let dim = self.ops.sdim;
        let mut out = d.to_vec();
        for (j, v) in out.iter_mut().enumerate() {
            let e = exps[j % dim];
            if e != 0 {
                *v *= h.powi(e);
            }
        }
        out
    }

    /// Evaluates the potential of `src_data` (original source ordering,
    /// `src_dim` entries per source) at every target; returns values in the
    /// original target ordering (`trg_dim` entries per target).
    pub fn evaluate(&self, src_data: &[f64]) -> Vec<f64> {
        assert_eq!(src_data.len(), self.src_pts.len() * self.sd, "source data length");
        let nd_eq = self.ops.n_surf * self.ops.sdim;
        let nd_chk = self.ops.n_surf * self.ops.vdim;
        let nodes = &self.tree.nodes;
        let deg = self.ops.deg;

        // permute source data into Morton order
        let mut data = vec![0.0; src_data.len()];
        for (pos, &orig) in self.tree.src_order.iter().enumerate() {
            let o = orig as usize * self.sd;
            data[pos * self.sd..(pos + 1) * self.sd]
                .copy_from_slice(&src_data[o..o + self.sd]);
        }

        // ---------------- upward pass ----------------
        let mut up_equiv: Vec<Vec<f64>> = vec![Vec::new(); nodes.len()];
        for level in (0..self.tree.levels.len()).rev() {
            let level_nodes = &self.tree.levels[level];
            let results: Vec<(u32, Vec<f64>)> = level_nodes
                .par_iter()
                .map(|&ni| {
                    let node = &nodes[ni as usize];
                    let h = self.tree.node_half(ni);
                    let center = self.tree.node_center(ni);
                    let mut equiv = vec![0.0; nd_eq];
                    if node.is_leaf {
                        if node.nsrc() > 0 {
                            // S2M: sources -> upward check surface -> density
                            let uc = cube_surface(self.ops.p, center, RAD_OUTER * h);
                            let mut check = vec![0.0; nd_chk];
                            let (a, b) = node.src_range;
                            let pts = &self.src_pts[a as usize..b as usize];
                            let dat = &data[a as usize * self.sd..b as usize * self.sd];
                            for (i, &t) in uc.iter().enumerate() {
                                let o = &mut check[i * self.ops.vdim..(i + 1) * self.ops.vdim];
                                for (j, &s) in pts.iter().enumerate() {
                                    self.src_kernel.eval_acc(
                                        t,
                                        s,
                                        &dat[j * self.sd..(j + 1) * self.sd],
                                        o,
                                    );
                                }
                            }
                            let scale = h.powf(-deg);
                            let mut d = self.ops.uc2ue.matvec(&check);
                            d.iter_mut().for_each(|v| *v *= scale);
                            equiv = d;
                        }
                    } else {
                        // M2M from children (already computed: deeper level)
                        for (o, &c) in node.children.iter().enumerate() {
                            if c != NONE && !up_equiv[c as usize].is_empty() {
                                self.ops.m2m[o].matvec_acc(&up_equiv[c as usize], 1.0, &mut equiv);
                            }
                        }
                    }
                    (ni, equiv)
                })
                .collect();
            for (ni, equiv) in results {
                up_equiv[ni as usize] = equiv;
            }
        }

        // ---------------- downward pass ----------------
        let mut dn_equiv: Vec<Vec<f64>> = vec![Vec::new(); nodes.len()];
        for level in 0..self.tree.levels.len() {
            let level_nodes = &self.tree.levels[level];
            let results: Vec<(u32, Vec<f64>)> = level_nodes
                .par_iter()
                .map(|&ni| {
                    let node = &nodes[ni as usize];
                    let h = self.tree.node_half(ni);
                    let center = self.tree.node_center(ni);
                    let mut check = vec![0.0; nd_chk];
                    let mut any = false;

                    // M2L from the V list
                    if !node.v_list.is_empty() {
                        let (tx, ty, tz) = node.key.anchor();
                        let kscale = h.powf(deg);
                        for &v in &node.v_list {
                            let src_equiv = &up_equiv[v as usize];
                            if src_equiv.is_empty() || src_equiv.iter().all(|&x| x == 0.0) {
                                continue;
                            }
                            let (sx, sy, sz) = nodes[v as usize].key.anchor();
                            let off = (
                                (sx as i64 - tx as i64) as i8,
                                (sy as i64 - ty as i64) as i8,
                                (sz as i64 - tz as i64) as i8,
                            );
                            let m = self
                                .ops
                                .m2l
                                .get(&off)
                                .expect("V-list offset outside precomputed M2L set");
                            m.matvec_acc(src_equiv, kscale, &mut check);
                            any = true;
                        }
                    }

                    // P2L from the X list (direct source evaluation at the
                    // downward check surface)
                    if !node.x_list.is_empty() {
                        let dc = cube_surface(self.ops.p, center, RAD_INNER * h);
                        for &x in &node.x_list {
                            let xn = &nodes[x as usize];
                            let (a, b) = xn.src_range;
                            if a == b {
                                continue;
                            }
                            let pts = &self.src_pts[a as usize..b as usize];
                            let dat = &data[a as usize * self.sd..b as usize * self.sd];
                            for (i, &t) in dc.iter().enumerate() {
                                let o = &mut check[i * self.ops.vdim..(i + 1) * self.ops.vdim];
                                for (j, &s) in pts.iter().enumerate() {
                                    self.src_kernel.eval_acc(
                                        t,
                                        s,
                                        &dat[j * self.sd..(j + 1) * self.sd],
                                        o,
                                    );
                                }
                            }
                            any = true;
                        }
                    }

                    let mut equiv = if any {
                        let scale = h.powf(-deg);
                        let mut d = self.ops.dc2de.matvec(&check);
                        d.iter_mut().for_each(|v| *v *= scale);
                        d
                    } else {
                        Vec::new()
                    };

                    // L2L from the parent
                    if node.parent != NONE {
                        let pd = &dn_equiv[node.parent as usize];
                        if !pd.is_empty() {
                            if equiv.is_empty() {
                                equiv = vec![0.0; nd_eq];
                            }
                            let oct = node.key.child_index();
                            self.ops.l2l[oct].matvec_acc(pd, 1.0, &mut equiv);
                        }
                    }
                    (ni, equiv)
                })
                .collect();
            for (ni, equiv) in results {
                dn_equiv[ni as usize] = equiv;
            }
        }

        // ---------------- leaf evaluation ----------------
        let leaves = self.tree.leaves();
        let chunks: Vec<(u32, Vec<f64>)> = leaves
            .par_iter()
            .filter(|&&li| nodes[li as usize].ntrg() > 0)
            .map(|&li| {
                let node = &nodes[li as usize];
                let (t0, t1) = node.trg_range;
                let trgs = &self.trg_pts[t0 as usize..t1 as usize];
                let mut out = vec![0.0; trgs.len() * self.td];

                // P2P over the U list
                for &u in &node.u_list {
                    let un = &nodes[u as usize];
                    let (a, b) = un.src_range;
                    if a == b {
                        continue;
                    }
                    let pts = &self.src_pts[a as usize..b as usize];
                    let dat = &data[a as usize * self.sd..b as usize * self.sd];
                    for (i, &t) in trgs.iter().enumerate() {
                        let o = &mut out[i * self.td..(i + 1) * self.td];
                        for (j, &s) in pts.iter().enumerate() {
                            self.src_kernel.eval_acc(t, s, &dat[j * self.sd..(j + 1) * self.sd], o);
                        }
                    }
                }

                // L2T: own downward equivalent density
                let dn = &dn_equiv[li as usize];
                if !dn.is_empty() {
                    let h = self.tree.node_half(li);
                    let center = self.tree.node_center(li);
                    let de = cube_surface(self.ops.p, center, RAD_OUTER * h);
                    let dns = self.scaled_density(dn, h);
                    for (i, &t) in trgs.iter().enumerate() {
                        let o = &mut out[i * self.td..(i + 1) * self.td];
                        for (j, &s) in de.iter().enumerate() {
                            self.eq_kernel.eval_acc(
                                t,
                                s,
                                &dns[j * self.ops.sdim..(j + 1) * self.ops.sdim],
                                o,
                            );
                        }
                    }
                }

                // M2T: W-list multipoles evaluated directly
                for &w in &node.w_list {
                    let wu = &up_equiv[w as usize];
                    if wu.is_empty() {
                        continue;
                    }
                    let h = self.tree.node_half(w);
                    let center = self.tree.node_center(w);
                    let ue = cube_surface(self.ops.p, center, RAD_INNER * h);
                    let wus = self.scaled_density(wu, h);
                    for (i, &t) in trgs.iter().enumerate() {
                        let o = &mut out[i * self.td..(i + 1) * self.td];
                        for (j, &s) in ue.iter().enumerate() {
                            self.eq_kernel.eval_acc(
                                t,
                                s,
                                &wus[j * self.ops.sdim..(j + 1) * self.ops.sdim],
                                o,
                            );
                        }
                    }
                }
                (li, out)
            })
            .collect();

        // scatter back to the original target order
        let mut out = vec![0.0; self.n_trg * self.td];
        for (li, vals) in chunks {
            let (t0, _) = nodes[li as usize].trg_range;
            for (i, chunk) in vals.chunks(self.td).enumerate() {
                let orig = self.tree.trg_order[t0 as usize + i] as usize;
                out[orig * self.td..(orig + 1) * self.td].copy_from_slice(chunk);
            }
        }
        out
    }
}

/// One-shot convenience wrapper: builds the tree and evaluates once.
pub fn fmm_evaluate<KS: Kernel + Clone, KE: Kernel + Clone>(
    src_kernel: &KS,
    eq_kernel: &KE,
    src: &[Vec3],
    src_data: &[f64],
    trg: &[Vec3],
    opts: FmmOptions,
) -> Vec<f64> {
    Fmm::new(src_kernel.clone(), eq_kernel.clone(), src, trg, opts).evaluate(src_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{direct_eval, LaplaceSL, StokesDL, StokesEquiv, StokesSL};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cloud(rng: &mut StdRng, n: usize, spread: f64, offset: Vec3) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                offset
                    + Vec3::new(
                        rng.random_range(-spread..spread),
                        rng.random_range(-spread..spread),
                        rng.random_range(-spread..spread),
                    )
            })
            .collect()
    }

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
        num / den.max(1e-300)
    }

    #[test]
    fn laplace_matches_direct_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let src = cloud(&mut rng, 1500, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 700, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..src.len()).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = LaplaceSL;
        let approx = fmm_evaluate(
            &k,
            &k,
            &src,
            &data,
            &trg,
            FmmOptions { order: 6, leaf_capacity: 60, max_depth: 10 },
        );
        let mut exact = vec![0.0; trg.len()];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn laplace_matches_direct_clustered() {
        // strong adaptivity: two tight clusters + sparse background
        let mut rng = StdRng::seed_from_u64(8);
        let mut src = cloud(&mut rng, 600, 0.02, Vec3::new(0.7, 0.7, 0.7));
        src.extend(cloud(&mut rng, 600, 0.02, Vec3::new(-0.7, -0.7, -0.7)));
        src.extend(cloud(&mut rng, 100, 1.0, Vec3::ZERO));
        let trg = src.clone();
        let data: Vec<f64> = (0..src.len()).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = LaplaceSL;
        let approx = fmm_evaluate(
            &k,
            &k,
            &src,
            &data,
            &trg,
            FmmOptions { order: 6, leaf_capacity: 50, max_depth: 12 },
        );
        let mut exact = vec![0.0; trg.len()];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-5, "relative error {e}");
    }

    #[test]
    fn stokes_single_layer_matches_direct() {
        let mut rng = StdRng::seed_from_u64(9);
        let src = cloud(&mut rng, 900, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 400, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..src.len() * 3).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = StokesSL { mu: 0.7 };
        let approx = fmm_evaluate(
            &k,
            &k,
            &src,
            &data,
            &trg,
            FmmOptions { order: 6, leaf_capacity: 70, max_depth: 10 },
        );
        let mut exact = vec![0.0; trg.len() * 3];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn stokes_double_layer_matches_direct() {
        // stresslet sources with unit normals; equivalent densities are
        // Stokeslets — the configuration the boundary solver uses.
        let mut rng = StdRng::seed_from_u64(10);
        let src = cloud(&mut rng, 800, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 300, 1.0, Vec3::new(0.1, 0.0, 0.0));
        let mut data = Vec::with_capacity(src.len() * 6);
        for _ in 0..src.len() {
            for _ in 0..3 {
                data.push(rng.random_range(-1.0..1.0));
            }
            let n = Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            )
            .normalized();
            data.extend_from_slice(&[n.x, n.y, n.z]);
        }
        let sk = StokesDL;
        // the augmented (force + source) equivalent kernel is required for
        // stresslet sources, which carry net mass flux
        let ek = StokesEquiv { mu: 1.0 };
        let approx = fmm_evaluate(
            &sk,
            &ek,
            &src,
            &data,
            &trg,
            FmmOptions { order: 6, leaf_capacity: 60, max_depth: 10 },
        );
        let mut exact = vec![0.0; trg.len() * 3];
        direct_eval(&sk, &src, &data, &trg, &mut exact);
        let e = rel_err(&approx, &exact);
        assert!(e < 1e-4, "relative error {e}");
    }

    #[test]
    fn accuracy_improves_with_order() {
        let mut rng = StdRng::seed_from_u64(11);
        let src = cloud(&mut rng, 800, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 200, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..src.len()).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = LaplaceSL;
        let mut exact = vec![0.0; trg.len()];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        let errs: Vec<f64> = [4usize, 6]
            .iter()
            .map(|&p| {
                let approx = fmm_evaluate(
                    &k,
                    &k,
                    &src,
                    &data,
                    &trg,
                    FmmOptions { order: p, leaf_capacity: 50, max_depth: 10 },
                );
                rel_err(&approx, &exact)
            })
            .collect();
        assert!(errs[1] < errs[0] * 0.5, "orders 4/6 errors: {errs:?}");
    }

    #[test]
    fn reusable_geometry_multiple_densities() {
        let mut rng = StdRng::seed_from_u64(12);
        let src = cloud(&mut rng, 500, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 200, 1.0, Vec3::ZERO);
        let k = LaplaceSL;
        let fmm = Fmm::new(k, k, &src, &trg, FmmOptions { order: 4, leaf_capacity: 40, max_depth: 10 });
        for seed in 0..3 {
            let mut r2 = StdRng::seed_from_u64(100 + seed);
            let data: Vec<f64> = (0..src.len()).map(|_| r2.random_range(-1.0..1.0)).collect();
            let approx = fmm.evaluate(&data);
            let mut exact = vec![0.0; trg.len()];
            direct_eval(&k, &src, &data, &trg, &mut exact);
            assert!(rel_err(&approx, &exact) < 1e-3);
        }
    }

    #[test]
    fn small_problem_is_pure_p2p() {
        // fewer points than leaf capacity: single-leaf tree, exact result
        let mut rng = StdRng::seed_from_u64(13);
        let src = cloud(&mut rng, 30, 1.0, Vec3::ZERO);
        let trg = cloud(&mut rng, 20, 1.0, Vec3::ZERO);
        let data: Vec<f64> = (0..30).map(|_| rng.random_range(-1.0..1.0)).collect();
        let k = LaplaceSL;
        let approx = fmm_evaluate(&k, &k, &src, &data, &trg, FmmOptions::default());
        let mut exact = vec![0.0; 20];
        direct_eval(&k, &src, &data, &trg, &mut exact);
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-14);
        }
    }
}
