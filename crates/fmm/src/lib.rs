//! # fmm — kernel-independent fast multipole method
//!
//! The PVFMM substitute (DESIGN.md substitution table): a shared-memory,
//! rayon-parallel, kernel-independent FMM in the style of Ying, Biros &
//! Zorin / Malhotra & Biros, used for every global far-field summation in
//! the platform — the free-space velocity `u_fr` (Eq. 2.4), the
//! double-layer matvec inside each GMRES iteration of the boundary solve
//! (Eq. 3.5), and the evaluation of `u_Γ` at check points and RBC points.
//!
//! Design highlights:
//! - equivalent/check cube surfaces with PVFMM's radii (1.05 / 2.95);
//! - regularized-SVD equivalent-density solves;
//! - per-level operator reuse via kernel homogeneity; one process-wide
//!   operator cache shared by all FMM instances;
//! - full adaptive-tree interaction lists (U/V/W/X) from the `octree`
//!   crate, so highly non-uniform surface distributions stay O(N).

pub mod eval;
pub mod ops;
pub mod surface;

pub use eval::{fmm_evaluate, Fmm, FmmOptions};
pub use ops::{cached_operators, kernel_matrix, ops_cache_stats, FmmOperators, OpsCacheStats};
pub use surface::{cube_surface, surface_point_count, RAD_INNER, RAD_OUTER};
