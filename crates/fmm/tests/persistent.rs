//! Regression suite for the persistent-plan FMM (`Fmm::frozen` +
//! `set_targets` / `evaluate_at`).
//!
//! The wall-FMM rework replaces a per-step throwaway `Fmm::new` with one
//! frozen source tree replanned per call for moving targets. These tests
//! pin the two properties that make that swap safe:
//!
//! 1. a long-lived replanned instance agrees with a fresh frozen build to
//!    ≤ 1e-12 on every target set (including repeated replans), and
//! 2. the frozen/virtual-leaf evaluation path agrees with direct
//!    summation to FMM truncation accuracy on wall-like (surface-
//!    concentrated) sources with targets in the pruned interior — the
//!    exact geometry of a vessel wall with red-cell quadrature targets in
//!    the lumen.

use fmm::{Fmm, FmmOptions};
use kernels::{direct_eval, LaplaceSL, StokesDL, StokesEquiv};
use linalg::Vec3;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Points on a tube surface of radius `r` along z — a vessel-wall stand-in
/// whose interior (the lumen) holds no sources, so interior targets land
/// in pruned octree regions and exercise the virtual-leaf path.
fn tube_surface(rng: &mut StdRng, n: usize, r: f64, len: f64) -> Vec<Vec3> {
    (0..n)
        .map(|_| {
            let th = rng.random_range(0.0..std::f64::consts::TAU);
            let z = rng.random_range(-0.5 * len..0.5 * len);
            Vec3::new(r * th.cos(), r * th.sin(), z)
        })
        .collect()
}

/// Targets inside the lumen (radius < `r`), i.e. in source-free regions.
fn lumen_targets(rng: &mut StdRng, n: usize, r: f64, len: f64) -> Vec<Vec3> {
    (0..n)
        .map(|_| {
            let th = rng.random_range(0.0..std::f64::consts::TAU);
            let rr = r * rng.random_range(0.0..0.85f64).sqrt();
            let z = rng.random_range(-0.45 * len..0.45 * len);
            Vec3::new(rr * th.cos(), rr * th.sin(), z)
        })
        .collect()
}

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

const OPTS: FmmOptions = FmmOptions {
    order: 4,
    leaf_capacity: 60,
    max_depth: 10,
};

/// A persistent instance replanned across randomized moving-target sets
/// must agree with a fresh frozen build per set to ≤ 1e-12 (they run the
/// identical plan on the identical tree, so in practice bit-identically).
#[test]
fn replanned_evaluate_matches_fresh_frozen_build() {
    let mut rng = StdRng::seed_from_u64(31);
    let src = tube_surface(&mut rng, 1500, 1.0, 4.0);
    let data: Vec<f64> = (0..src.len())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let k = LaplaceSL;

    let trg0 = lumen_targets(&mut rng, 300, 1.0, 4.0);
    let mut persistent = Fmm::frozen(k, k, &src, &trg0, OPTS);

    for round in 0..4 {
        // targets drift between rounds, as cell quadrature points do
        let trg = lumen_targets(&mut rng, 250 + 25 * round, 1.0, 4.0);
        let replanned = persistent.evaluate_at(&data, &trg);
        let fresh = Fmm::frozen(k, k, &src, &trg, OPTS).evaluate(&data);
        let d = max_abs_diff(&replanned, &fresh);
        assert!(
            d <= 1e-12,
            "round {round}: replanned vs fresh frozen differ by {d:.3e}"
        );
    }
}

/// Replanning away and back must reproduce the original result
/// bit-for-bit: no target-side state may leak between replans.
#[test]
fn repeated_replans_on_same_plan_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(32);
    let src = tube_surface(&mut rng, 1200, 1.0, 4.0);
    let data: Vec<f64> = (0..src.len())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let k = LaplaceSL;
    let ta = lumen_targets(&mut rng, 300, 1.0, 4.0);
    let tb = lumen_targets(&mut rng, 180, 1.0, 4.0);

    let mut f = Fmm::frozen(k, k, &src, &ta, OPTS);
    let first = f.evaluate(&data);
    let _ = f.evaluate_at(&data, &tb);
    let again = f.evaluate_at(&data, &ta);
    assert_eq!(first, again, "replan round-trip changed the result");
}

/// The virtual-leaf path must hit normal FMM truncation accuracy against
/// direct summation for lumen targets over wall sources.
#[test]
fn frozen_lumen_evaluation_matches_direct_summation() {
    let mut rng = StdRng::seed_from_u64(33);
    let src = tube_surface(&mut rng, 1800, 1.0, 4.0);
    let trg = lumen_targets(&mut rng, 350, 1.0, 4.0);
    let data: Vec<f64> = (0..src.len())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let k = LaplaceSL;
    let opts = FmmOptions { order: 6, ..OPTS };
    let approx = Fmm::frozen(k, k, &src, &trg, opts).evaluate(&data);
    let mut exact = vec![0.0; trg.len()];
    direct_eval(&k, &src, &data, &trg, &mut exact);
    let e = rel_err(&approx, &exact);
    assert!(e < 1e-5, "relative error {e}");
}

/// Same check in the boundary solver's configuration: stresslet sources
/// with the augmented Stokes equivalent kernel, at the refined-path
/// default order 4.
#[test]
fn frozen_stokes_double_layer_matches_direct_summation() {
    let mut rng = StdRng::seed_from_u64(34);
    let src = tube_surface(&mut rng, 1500, 1.0, 4.0);
    let trg = lumen_targets(&mut rng, 300, 1.0, 4.0);
    let mut data = Vec::with_capacity(src.len() * 6);
    for p in &src {
        for _ in 0..3 {
            data.push(rng.random_range(-1.0..1.0));
        }
        // inward wall normal
        let n = Vec3::new(-p.x, -p.y, 0.0).normalized();
        data.extend_from_slice(&[n.x, n.y, n.z]);
    }
    let sk = StokesDL;
    let ek = StokesEquiv { mu: 1.0 };
    let approx = Fmm::frozen(sk, ek, &src, &trg, OPTS).evaluate(&data);
    let mut exact = vec![0.0; trg.len() * 3];
    direct_eval(&sk, &src, &data, &trg, &mut exact);
    // order 4 carries ~3 digits on stresslet clouds (measured 3.6e-3);
    // the matvec-operator accuracy that governs the refined default is
    // pinned separately in crates/bie/tests/tube.rs
    let e = rel_err(&approx, &exact);
    assert!(e < 1e-2, "relative error {e} at order 4");

    // and the persistent/fresh agreement holds for this kernel pair too
    let mut persistent = Fmm::frozen(sk, ek, &src, &trg, OPTS);
    let trg2 = lumen_targets(&mut rng, 280, 1.0, 4.0);
    let replanned = persistent.evaluate_at(&data, &trg2);
    let fresh = Fmm::frozen(sk, ek, &src, &trg2, OPTS).evaluate(&data);
    let d = max_abs_diff(&replanned, &fresh);
    assert!(d <= 1e-12, "replanned vs fresh differ by {d:.3e}");
}

/// Targets outside the frozen root cube (a cell drifting past the port
/// plane) fall back to exact direct summation.
#[test]
fn out_of_cube_targets_are_exact() {
    let mut rng = StdRng::seed_from_u64(35);
    let src = tube_surface(&mut rng, 900, 1.0, 3.0);
    let data: Vec<f64> = (0..src.len())
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let k = LaplaceSL;
    // mixed set: lumen targets plus far-outside stragglers
    let mut trg = lumen_targets(&mut rng, 100, 1.0, 3.0);
    trg.push(Vec3::new(0.0, 0.0, 9.0));
    trg.push(Vec3::new(6.0, -5.0, 0.0));
    let out = Fmm::frozen(k, k, &src, &trg, OPTS).evaluate(&data);
    let mut exact = vec![0.0; trg.len()];
    direct_eval(&k, &src, &data, &trg, &mut exact);
    for i in trg.len() - 2..trg.len() {
        assert!(
            (out[i] - exact[i]).abs() <= 1e-12 * exact[i].abs().max(1.0),
            "outside target {i} not exact: {} vs {}",
            out[i],
            exact[i]
        );
    }
}
