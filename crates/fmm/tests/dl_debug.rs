//! Diagnostic scan: Stokes double-layer FMM error vs pseudo-inverse
//! truncation (run with --ignored).

use fmm::{Fmm, FmmOperators, FmmOptions};
use kernels::{direct_eval, StokesDL, StokesEquiv};
use linalg::Vec3;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

#[test]
#[ignore]
fn scan_dl_error() {
    let mut rng = StdRng::seed_from_u64(10);
    let n = 800;
    let r3 = |rng: &mut StdRng| {
        Vec3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        )
    };
    let src: Vec<Vec3> = (0..n).map(|_| r3(&mut rng)).collect();
    let trg: Vec<Vec3> = (0..300).map(|_| r3(&mut rng)).collect();
    let mut data = Vec::new();
    for _ in 0..n {
        for _ in 0..3 {
            data.push(rng.random_range(-1.0..1.0));
        }
        let nr = r3(&mut rng).normalized();
        data.extend_from_slice(&[nr.x, nr.y, nr.z]);
    }
    let sk = StokesDL;
    let ek = StokesEquiv { mu: 1.0 };
    let mut exact = vec![0.0; trg.len() * 3];
    direct_eval(&sk, &src, &data, &trg, &mut exact);
    for tol in [1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-3] {
        let ops = Arc::new(FmmOperators::build_with_tol(&ek, 6, tol));
        let f = Fmm::with_ops(
            sk,
            ek,
            ops,
            &src,
            &trg,
            FmmOptions {
                order: 6,
                leaf_capacity: 60,
                max_depth: 10,
            },
        );
        let approx = f.evaluate(&data);
        let num: f64 = approx
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = exact.iter().map(|b| b * b).sum::<f64>().sqrt();
        println!("tol {tol:.0e}: rel err {:.3e}", num / den);
    }
}
